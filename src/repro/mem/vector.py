"""Vectorized lane-batched cache timing engine for co-hosted guests.

:class:`LaneCacheModel` stacks the tag/recency state of every
co-resident guest that shares one :class:`~repro.mem.cache.CacheConfig`
geometry into numpy lane arrays — ``tags[lane, set, way]``, a matching
recency/insertion-rank matrix, and an LCG state vector for the
``random`` policy — and gives each guest a :class:`LaneView` exposing
the exact :class:`~repro.mem.cache.SetAssociativeCache` interface, so
the pipeline hot paths run unchanged.

Two constraints shape the design (see ``docs/PERFORMANCE.md`` §9):

* **Load latencies are architecturally visible mid-quantum.**  A load's
  hit/miss latency feeds the scoreboard, the scoreboard feeds the
  cycle counter, and the guest branches on ``rdcycle`` — that is the
  whole flush+reload channel.  Cache *state* therefore cannot be
  replayed after the fact; each :class:`LaneView` answers accesses
  synchronously against its own lane state (the same list
  representation the scalar model uses, which is also the fastest
  per-access representation CPython has).

* **Stats and observables are only read at drain boundaries.**  Every
  access appends one packed record (address, size, kind, outcome — the
  address/size fields only under the verify replay, their one consumer)
  to a flat per-guest access log instead of bumping counters; the
  multi-guest quantum loop drains all lanes between turns through the
  vector engine — a single vectorized set-index/tag decomposition and
  ``bincount``-style reduction per lane, with an optional lockstep
  numpy replay (:class:`VectorReplay`, enabled by
  ``REPRO_LANE_VERIFY=1``) that re-derives every outcome from the
  logged touches and raises on any divergence.

Bit-identity per guest against a scalar solo run — every stat, every
per-access latency, every ``probe()``/``resident_lines()`` observable,
eviction order under the ``random`` LCG included — is gated by
``tests/mem/test_vector_differential.py`` and the lane-differential
legs of ``tests/platform/test_fastpath_differential.py``.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .cache import CacheConfig, CacheStats

__all__ = [
    "LaneCacheModel",
    "LaneGroupRegistry",
    "LaneView",
    "VectorReplay",
    "OP_ACCESS",
    "OP_FLUSH",
    "OP_FLUSH_ALL",
]

#: Op kinds in the packed access log (bits 1-2 of each record).
OP_ACCESS = 0
OP_FLUSH = 1
OP_FLUSH_ALL = 2

#: Packed log record layout (one signed 64-bit word per event):
#:   bit  0     : access hit / flushed line was resident
#:   bits 1-2   : op kind (OP_*)
#:   bits 3-7   : lines evicted by this access (0 for flushes)
#:   bits 8-15  : access size in bytes (max(size, 1), capped at 255)
#:   bits 16-62 : guest address
#:
#: The drain consumes only the low byte (kind, hit, eviction count);
#: the address/size fields exist for the lockstep replay cross-check
#: and are populated only under ``REPRO_LANE_VERIFY`` — on the fast
#: path every record stays below 2**8, so the ints CPython appends to
#: the log are interned rather than allocated per access.
_KIND_SHIFT = 1
_EVICT_SHIFT = 3
_SIZE_SHIFT = 8
_ADDR_SHIFT = 16

#: Pre-shifted kind markers for the hot-path log appends.
_FLUSH_RECORD = OP_FLUSH << _KIND_SHIFT
_FLUSH_ALL_RECORD = OP_FLUSH_ALL << _KIND_SHIFT

#: The scalar model's deterministic LCG (see ``SetAssociativeCache``).
_LCG_SEED = 0x2545F491
_LCG_MUL = 1103515245
_LCG_ADD = 12345
_LCG_MASK = 0x7FFFFFFF


class LaneView:
    """One guest's lane: the full ``SetAssociativeCache`` interface.

    State updates are synchronous (load latencies are observable through
    ``rdcycle`` before the quantum ends); stats accounting is deferred
    into the packed log and materialized by :meth:`LaneCacheModel.drain`
    — reading :attr:`stats` forces a drain, so every observable is
    always current when looked at.

    A one-entry memo short-circuits re-touches of the most recently
    accessed line: under every replacement policy a repeat touch of the
    line that is already most-recent is a hit with no state change (LRU
    moves it to the position it already occupies; FIFO and random do not
    reorder on hit), so the memo answers without list traffic and
    without a log record — those hits are tallied separately and folded
    in at drain time.
    """

    __slots__ = (
        "config", "model", "lane", "_stats", "_sets", "_lcg_state",
        "_line_size", "_line_mask", "_num_sets", "_assoc",
        "_hit_latency", "_miss_latency", "_is_lru", "_is_random",
        "_log", "_log_append", "_memo_line", "_memo_hits", "_verify",
    )

    def __init__(self, model: "LaneCacheModel", lane: int):
        config = model.config
        self.config = config
        self.model = model
        self.lane = lane
        self._stats = CacheStats()
        self._sets: List[List[int]] = [[] for _ in range(config.num_sets)]
        self._lcg_state = _LCG_SEED
        self._line_size = config.line_size
        self._line_mask = ~(config.line_size - 1)
        self._num_sets = config.num_sets
        self._assoc = config.associativity
        self._hit_latency = config.hit_latency
        self._miss_latency = config.miss_latency
        self._is_lru = config.replacement == "lru"
        self._is_random = config.replacement == "random"
        self._log = array("q")
        self._log_append = self._log.append
        self._memo_line = -1
        self._memo_hits = 0
        self._verify = model.verify

    # ------------------------------------------------------------------
    # Timed accesses (the pipeline hot path).
    # ------------------------------------------------------------------

    def access(self, address: int, size: int = 1) -> Tuple[bool, int]:
        """Access ``size`` bytes at ``address`` — scalar-identical
        ``(hit, latency_cycles)``, state updated in place.

        The body is the single-line case, written flat: it is the
        overwhelmingly common shape (every timed load/store crosses a
        line only when it genuinely straddles one), so the span loop
        lives in :meth:`_access_span` and this path pays no loop
        bookkeeping.  A hit of the line that is already most-recent
        skips the LRU list surgery too — remove+append of the tail
        element is a no-op under every policy.
        """
        first_line = address & self._line_mask
        if size > 1:
            last_line = (address + size - 1) & self._line_mask
            if last_line != first_line:
                return self._access_span(address, size, first_line,
                                         last_line)
        if first_line == self._memo_line:
            self._memo_hits += 1
            return True, self._hit_latency
        number = first_line // self._line_size
        ways = self._sets[number % self._num_sets]
        tag = number // self._num_sets
        if tag in ways:
            if self._is_lru and ways[-1] != tag:
                ways.remove(tag)
                ways.append(tag)
            self._memo_line = first_line
            if self._verify:
                self._log_append((address << _ADDR_SHIFT)
                                 | (1 << _SIZE_SHIFT) | 1)
            else:
                self._log_append(1)
            return True, self._hit_latency
        evicted = 0
        if len(ways) >= self._assoc:
            if self._is_random:
                state = (self._lcg_state * _LCG_MUL + _LCG_ADD) & _LCG_MASK
                self._lcg_state = state
                ways.pop(state % len(ways))
            else:
                ways.pop(0)
            evicted = 1
        ways.append(tag)
        self._memo_line = first_line
        if self._verify:
            self._log_append((address << _ADDR_SHIFT) | (1 << _SIZE_SHIFT)
                             | (evicted << _EVICT_SHIFT))
        else:
            self._log_append(evicted << _EVICT_SHIFT)
        return False, self._miss_latency

    def _access_span(self, address: int, size: int, first_line: int,
                     last_line: int) -> Tuple[bool, int]:
        """The line-straddling tail of :meth:`access`."""
        line_size = self._line_size
        num_sets = self._num_sets
        hit = True
        evicted = 0
        line = first_line
        while True:
            number = line // line_size
            ways = self._sets[number % num_sets]
            tag = number // num_sets
            if tag in ways:
                if self._is_lru:
                    ways.remove(tag)
                    ways.append(tag)
            else:
                hit = False
                if len(ways) >= self._assoc:
                    if self._is_random:
                        state = (self._lcg_state * _LCG_MUL
                                 + _LCG_ADD) & _LCG_MASK
                        self._lcg_state = state
                        ways.pop(state % len(ways))
                    else:
                        ways.pop(0)
                    evicted += 1
                ways.append(tag)
            if line == last_line:
                break
            line += line_size
        self._memo_line = last_line
        if self._verify:
            self._log_append(
                (address << _ADDR_SHIFT)
                | (size << _SIZE_SHIFT)
                | (evicted << _EVICT_SHIFT)
                | hit
            )
        else:
            self._log_append((evicted << _EVICT_SHIFT) | hit)
        if hit:
            return True, self._hit_latency
        return False, self._miss_latency

    def flush_line(self, address: int) -> bool:
        """Guest ``cflush``: invalidate the line; returns residency."""
        line_base = address & self._line_mask
        number = line_base // self._line_size
        ways = self._sets[number % self._num_sets]
        tag = number // self._num_sets
        if line_base == self._memo_line:
            self._memo_line = -1
        resident = tag in ways
        if resident:
            ways.remove(tag)
        if self._verify:
            self._log_append((address << _ADDR_SHIFT)
                             | _FLUSH_RECORD | resident)
        else:
            self._log_append(_FLUSH_RECORD | resident)
        return resident

    def flush_all(self) -> None:
        """Invalidate every line (no stats, matching the scalar model)."""
        for ways in self._sets:
            ways.clear()
        self._memo_line = -1
        self._log_append(_FLUSH_ALL_RECORD)

    # ------------------------------------------------------------------
    # Observers — scalar-identical, no drain needed for pure state.
    # ------------------------------------------------------------------

    def line_address(self, address: int) -> int:
        return address & self._line_mask

    def _index_tag(self, address: int) -> Tuple[int, int]:
        line = address // self._line_size
        return line % self._num_sets, line // self._num_sets

    def probe(self, address: int) -> bool:
        index, tag = self._index_tag(address & self._line_mask)
        return tag in self._sets[index]

    def resident_lines(self) -> List[int]:
        lines = []
        for index, ways in enumerate(self._sets):
            for tag in ways:
                line_number = tag * self._num_sets + index
                lines.append(line_number * self._line_size)
        return sorted(lines)

    def occupancy(self) -> int:
        return sum(len(ways) for ways in self._sets)

    @property
    def stats(self) -> CacheStats:
        """Counters — reading forces a drain, so they are always
        current even though the hot path defers all accounting."""
        self.model.drain_lane(self)
        return self._stats

    def drain(self) -> None:
        """Materialize deferred stats from this lane's log."""
        self.model.drain_lane(self)


class LaneCacheModel:
    """Lane-stacked cache state for guests sharing one geometry.

    One lane per guest; lanes never interact (cache state is strictly
    per guest), so stacking is purely a batching device: the drain
    reduces all lanes' deferred logs in one numpy pass per lane, and
    the exported ``tags``/``recency``/``lcg`` arrays give tests and
    diagnostics a single lane-major view of every co-resident guest.
    """

    def __init__(self, config: Optional[CacheConfig] = None,
                 verify: bool = False):
        self.config = config or CacheConfig()
        self.lanes: List[LaneView] = []
        #: Aggregate drain accounting (exported as mem.cache.lane.*).
        self.drains = 0
        self.drained_entries = 0
        self.memo_hits = 0
        #: Optional lockstep replay cross-check (REPRO_LANE_VERIFY=1):
        #: every drained log is re-derived by :class:`VectorReplay` and
        #: compared outcome-by-outcome.
        self.verify = verify
        self._replay: Optional[VectorReplay] = None

    # ------------------------------------------------------------------
    # Lane management.
    # ------------------------------------------------------------------

    def add_lane(self) -> LaneView:
        lane = LaneView(self, len(self.lanes))
        self.lanes.append(lane)
        if self.verify:
            if self._replay is None:
                self._replay = VectorReplay(self.config, 0)
            self._replay.add_lane()
        return lane

    def __len__(self) -> int:
        return len(self.lanes)

    # ------------------------------------------------------------------
    # Per-lane convenience API (mirrors SetAssociativeCache; used by the
    # differential suites to drive lanes without going through a view).
    # ------------------------------------------------------------------

    def access(self, lane: int, address: int,
               size: int = 1) -> Tuple[bool, int]:
        return self.lanes[lane].access(address, size)

    def flush_line(self, lane: int, address: int) -> bool:
        return self.lanes[lane].flush_line(address)

    def flush_all(self, lane: int) -> None:
        self.lanes[lane].flush_all()

    def probe(self, lane: int, address: int) -> bool:
        return self.lanes[lane].probe(address)

    def resident_lines(self, lane: int) -> List[int]:
        return self.lanes[lane].resident_lines()

    def occupancy(self, lane: int) -> int:
        return self.lanes[lane].occupancy()

    def stats(self, lane: int) -> CacheStats:
        return self.lanes[lane].stats

    # ------------------------------------------------------------------
    # Lane-stacked numpy exports.
    # ------------------------------------------------------------------

    def tags_array(self) -> np.ndarray:
        """``tags[lane, set, way]`` — resident tags in list order
        (way 0 = next LRU/FIFO victim), ``-1`` marks an empty way."""
        config = self.config
        out = np.full((len(self.lanes), config.num_sets,
                       config.associativity), -1, dtype=np.int64)
        for index, lane in enumerate(self.lanes):
            for set_index, ways in enumerate(lane._sets):
                if ways:
                    out[index, set_index, :len(ways)] = ways
        return out

    def recency_array(self) -> np.ndarray:
        """``recency[lane, set, way]`` — the way's recency/insertion
        rank (0 = next victim under LRU/FIFO), ``-1`` where empty."""
        tags = self.tags_array()
        ranks = np.broadcast_to(
            np.arange(tags.shape[2], dtype=np.int64), tags.shape).copy()
        ranks[tags < 0] = -1
        return ranks

    def lcg_array(self) -> np.ndarray:
        """Per-lane deterministic LCG state (``random`` policy)."""
        return np.array([lane._lcg_state for lane in self.lanes],
                        dtype=np.int64)

    def stats_array(self) -> np.ndarray:
        """``stats[lane] = (hits, misses, evictions, flushes)``."""
        self.drain()
        out = np.zeros((len(self.lanes), 4), dtype=np.int64)
        for index, lane in enumerate(self.lanes):
            stats = lane._stats
            out[index] = (stats.hits, stats.misses,
                          stats.evictions, stats.flushes)
        return out

    # ------------------------------------------------------------------
    # The drain: deferred logs -> stats, in one numpy pass per lane.
    # ------------------------------------------------------------------

    def drain(self) -> None:
        """Drain every lane's deferred log (the quantum boundary)."""
        for lane in self.lanes:
            self.drain_lane(lane)

    def drain_lane(self, lane: LaneView) -> None:
        log = lane._log
        if not log and not lane._memo_hits:
            return
        stats = lane._stats
        if log:
            records = np.frombuffer(log, dtype=np.int64)
            kinds = (records >> _KIND_SHIFT) & 3
            hit_bits = records & 1
            accesses = kinds == OP_ACCESS
            hits = int(hit_bits[accesses].sum())
            stats.hits += hits
            stats.misses += int(accesses.sum()) - hits
            stats.evictions += int(((records >> _EVICT_SHIFT) & 31).sum())
            stats.flushes += int((kinds == OP_FLUSH).sum())
            self.drained_entries += int(records.size)
            if self.verify:
                self._verify_lane(lane.lane, records, kinds)
            lane._log = array("q")
            lane._log_append = lane._log.append
        stats.hits += lane._memo_hits
        self.memo_hits += lane._memo_hits
        lane._memo_hits = 0
        self.drains += 1

    def _verify_lane(self, index: int, records: np.ndarray,
                     kinds: np.ndarray) -> None:
        """Cross-check a drained log against the lockstep replay."""
        addresses = records >> _ADDR_SHIFT
        sizes = (records >> _SIZE_SHIFT) & 255
        outcome = self._replay.run({index: (kinds, addresses, sizes)})
        expected = records & 1
        got = outcome[index]["hits"]
        if not np.array_equal(got, expected):
            where = int(np.argmax(got != expected))
            raise AssertionError(
                "lane %d replay divergence at log entry %d: "
                "replay=%d logged=%d (address %#x)"
                % (index, where, int(got[where]), int(expected[where]),
                   int(addresses[where])))
        evictions = (records >> _EVICT_SHIFT) & 31
        if not np.array_equal(outcome[index]["evictions"], evictions):
            raise AssertionError(
                "lane %d replay eviction-count divergence" % index)


class VectorReplay:
    """Lockstep numpy replay of per-lane op streams.

    The state lives entirely in lane-stacked arrays — ``tags[lane, set,
    way]`` in list order (way 0 = next LRU/FIFO victim), an occupancy
    matrix, and the LCG state vector — and :meth:`run` replays one op
    stream per lane *in lockstep*: step ``t`` applies touch ``t`` of
    every lane still holding ops, with each update category (flush,
    LRU move-to-front, fill, evict) resolved by one fancy-indexed
    gather/scatter across all lanes in that category.  Per-op streams
    are first expanded to per-touch streams with a vectorized
    set-index/tag decomposition (line-spanning accesses become one
    touch per line, exactly like the scalar model's ``_touch`` loop).

    Lanes never interact — the lockstep is purely a batching device —
    so each lane's outcome sequence is bit-identical to an independent
    :class:`~repro.mem.cache.SetAssociativeCache` replaying the same
    stream (the seeded fuzz suite gates this, eviction order under the
    ``random`` LCG included).
    """

    def __init__(self, config: Optional[CacheConfig] = None,
                 lanes: int = 0):
        self.config = config or CacheConfig()
        self._num_sets = self.config.num_sets
        self._assoc = self.config.associativity
        self._line_size = self.config.line_size
        self._is_lru = self.config.replacement == "lru"
        self._is_random = self.config.replacement == "random"
        shape = (lanes, self._num_sets, self._assoc)
        self.tags = np.full(shape, -1, dtype=np.int64)
        self.occ = np.zeros(shape[:2], dtype=np.int64)
        self.lcg = np.full(lanes, _LCG_SEED, dtype=np.int64)
        #: ``stats[lane] = (hits, misses, evictions, flushes)``.
        self.stats = np.zeros((lanes, 4), dtype=np.int64)

    @property
    def lanes(self) -> int:
        return self.tags.shape[0]

    def add_lane(self) -> int:
        """Append one empty lane; returns its index."""
        self.tags = np.concatenate(
            [self.tags, np.full((1, self._num_sets, self._assoc), -1,
                                dtype=np.int64)])
        self.occ = np.concatenate(
            [self.occ, np.zeros((1, self._num_sets), dtype=np.int64)])
        self.lcg = np.concatenate(
            [self.lcg, np.full(1, _LCG_SEED, dtype=np.int64)])
        self.stats = np.concatenate(
            [self.stats, np.zeros((1, 4), dtype=np.int64)])
        return self.lanes - 1

    # ------------------------------------------------------------------
    # Decomposition.
    # ------------------------------------------------------------------

    def decompose(self, kinds, addresses, sizes):
        """Vectorized per-touch expansion of one lane's op stream.

        Returns ``(op_of_touch, op_starts, t_set, t_tag, t_kind)``:
        line-spanning accesses expand to one touch per line in
        ascending line order; flushes and flush-alls stay single
        touches.
        """
        kinds = np.asarray(kinds, dtype=np.int64)
        addresses = np.asarray(addresses, dtype=np.int64)
        sizes = np.maximum(np.asarray(sizes, dtype=np.int64), 1)
        first = addresses // self._line_size
        last = (addresses + sizes - 1) // self._line_size
        spans = np.where(kinds == OP_ACCESS, last - first + 1, 1)
        op_starts = np.cumsum(spans) - spans
        total = int(spans.sum())
        op_of_touch = np.repeat(np.arange(kinds.size), spans)
        offsets = np.arange(total) - np.repeat(op_starts, spans)
        t_line = np.repeat(first, spans) + offsets
        return (op_of_touch, op_starts, t_line % self._num_sets,
                t_line // self._num_sets, np.repeat(kinds, spans))

    # ------------------------------------------------------------------
    # The lockstep replay.
    # ------------------------------------------------------------------

    def run(self, streams: Dict[int, Tuple[Sequence[int], Sequence[int],
                                           Sequence[int]]]) -> Dict[int, dict]:
        """Replay ``{lane: (kinds, addresses, sizes)}``; returns per-lane
        per-op outcomes (``hits``, ``evictions``, ``latencies``) plus
        the lane's stat deltas, advancing the stacked state in place."""
        order = sorted(streams)
        decomposed = {index: self.decompose(*streams[index])
                      for index in order}
        touch_counts = np.array(
            [decomposed[index][2].size for index in order], dtype=np.int64)
        max_touches = int(touch_counts.max()) if order else 0
        rows_lanes = np.array(order, dtype=np.int64)
        # Pad per-touch streams into [lane, touch] matrices so each
        # lockstep column is one fancy-indexed slice (-1 kind = idle).
        shape = (len(order), max_touches)
        set2d = np.zeros(shape, dtype=np.int64)
        tag2d = np.zeros(shape, dtype=np.int64)
        kind2d = np.full(shape, -1, dtype=np.int64)
        hit2d = np.zeros(shape, dtype=np.int64)
        evict2d = np.zeros(shape, dtype=np.int64)
        for row, index in enumerate(order):
            _, _, t_set, t_tag, t_kind = decomposed[index]
            set2d[row, :t_set.size] = t_set
            tag2d[row, :t_tag.size] = t_tag
            kind2d[row, :t_kind.size] = t_kind
        ways = self._assoc
        for t in range(max_touches):
            kinds_t = kind2d[:, t]
            clear = kinds_t == OP_FLUSH_ALL
            if clear.any():
                lanes_clear = rows_lanes[clear]
                self.tags[lanes_clear] = -1
                self.occ[lanes_clear] = 0
            busy = np.nonzero((kinds_t >= 0) & ~clear)[0]
            if not busy.size:
                continue
            lanes_b = rows_lanes[busy]
            sets_b = set2d[busy, t]
            tags_b = tag2d[busy, t]
            kind_b = kinds_t[busy]
            rows = self.tags[lanes_b, sets_b]
            occ = self.occ[lanes_b, sets_b]
            matches = rows == tags_b[:, None]
            found = matches.any(axis=1)
            pos = matches.argmax(axis=1)
            is_flush = kind_b == OP_FLUSH
            hit2d[busy, t] = found
            # -- flush of a resident line: remove-at-pos ----------------
            sel = is_flush & found
            if sel.any():
                new = self._remove_insert(
                    rows[sel], pos[sel], occ[sel] - 1,
                    np.full(int(sel.sum()), -1, dtype=np.int64))
                self.tags[lanes_b[sel], sets_b[sel]] = new
                self.occ[lanes_b[sel], sets_b[sel]] = occ[sel] - 1
            # -- LRU hit: move-to-most-recent ---------------------------
            sel = ~is_flush & found
            if self._is_lru and sel.any():
                new = self._remove_insert(rows[sel], pos[sel],
                                          occ[sel] - 1, tags_b[sel])
                self.tags[lanes_b[sel], sets_b[sel]] = new
            # -- miss fill into a non-full set --------------------------
            miss = ~is_flush & ~found
            sel = miss & (occ < ways)
            if sel.any():
                self.tags[lanes_b[sel], sets_b[sel], occ[sel]] = tags_b[sel]
                self.occ[lanes_b[sel], sets_b[sel]] = occ[sel] + 1
            # -- miss fill into a full set: evict then append -----------
            sel = miss & (occ >= ways)
            if sel.any():
                if self._is_random:
                    state = (self.lcg[lanes_b[sel]] * _LCG_MUL
                             + _LCG_ADD) & _LCG_MASK
                    self.lcg[lanes_b[sel]] = state
                    victim = state % occ[sel]
                else:
                    victim = np.zeros(int(sel.sum()), dtype=np.int64)
                new = self._remove_insert(
                    rows[sel], victim,
                    np.full(int(sel.sum()), ways - 1, dtype=np.int64),
                    tags_b[sel])
                self.tags[lanes_b[sel], sets_b[sel]] = new
                evict2d[busy[sel], t] = 1
        # Per-op reduction: an access hits iff all its touches hit.
        outcomes: Dict[int, dict] = {}
        hit_latency = self.config.hit_latency
        miss_latency = self.config.miss_latency
        for row, index in enumerate(order):
            op_of_touch, op_starts, _, _, _ = decomposed[index]
            kinds = np.asarray(streams[index][0], dtype=np.int64)
            count = touch_counts[row]
            t_hit = hit2d[row, :count]
            t_evict = evict2d[row, :count]
            if op_starts.size:
                op_hit = np.minimum.reduceat(t_hit, op_starts)
                op_evict = np.add.reduceat(t_evict, op_starts)
            else:
                op_hit = np.zeros(0, dtype=np.int64)
                op_evict = np.zeros(0, dtype=np.int64)
            latencies = np.where(
                kinds == OP_ACCESS,
                np.where(op_hit == 1, hit_latency, miss_latency),
                np.where(kinds == OP_FLUSH, hit_latency, 0))
            accesses = kinds == OP_ACCESS
            hits = int(op_hit[accesses].sum())
            delta = np.array([hits, int(accesses.sum()) - hits,
                              int(op_evict.sum()),
                              int((kinds == OP_FLUSH).sum())],
                             dtype=np.int64)
            self.stats[index] += delta
            outcomes[index] = {"hits": op_hit, "evictions": op_evict,
                               "latencies": latencies, "stats": delta}
        return outcomes

    @staticmethod
    def _remove_insert(rows: np.ndarray, remove_at: np.ndarray,
                       insert_at: np.ndarray,
                       values: np.ndarray) -> np.ndarray:
        """Per-row list surgery, all rows at once: delete the element at
        ``remove_at`` (shifting the tail left) and write ``values`` at
        ``insert_at`` — the vector form of ``ways.pop(i)`` +
        ``ways.append(tag)`` / ``ways.insert`` on the scalar model."""
        ways = rows.shape[1]
        gather = np.arange(ways) + (np.arange(ways) >= remove_at[:, None])
        np.minimum(gather, ways - 1, out=gather)
        out = np.take_along_axis(rows, gather, axis=1)
        out[np.arange(rows.shape[0]), insert_at] = values
        return out


class LaneGroupRegistry:
    """Lane groups keyed by cache geometry, one per multi-guest host.

    Guests whose :class:`~repro.mem.cache.CacheConfig` compare equal
    (value equality — the frozen dataclass hash; shard-canonical
    configs from the translation pool land on the same key for free)
    share one :class:`LaneCacheModel`; each guest gets its own lane.
    Observer- or supervisor-gated guests never reach this registry
    (they fall back to the scalar cache, mirroring the pool-sharing
    gate) but are counted here so the exclusion is visible in the
    ``mem.cache.lane.*`` counters.
    """

    def __init__(self, verify: bool = False):
        self.verify = verify
        self.groups: Dict[CacheConfig, LaneCacheModel] = {}
        #: Guests that fell back to the scalar model (gated).
        self.excluded = 0

    def lane_for(self, config: CacheConfig) -> LaneView:
        """A fresh lane in the group for ``config`` (created on first
        use)."""
        model = self.groups.get(config)
        if model is None:
            model = LaneCacheModel(config, verify=self.verify)
            self.groups[config] = model
        return model.add_lane()

    def drain_all(self) -> None:
        """Quantum boundary: drain every group's deferred logs."""
        for model in self.groups.values():
            model.drain()

    def counters(self) -> Dict[str, int]:
        """Aggregate ``mem.cache.lane.*`` counter values."""
        lanes = sum(len(model) for model in self.groups.values())
        return {
            "mem.cache.lane.groups": len(self.groups),
            "mem.cache.lane.lanes": lanes,
            "mem.cache.lane.excluded": self.excluded,
            "mem.cache.lane.drains": sum(
                model.drains for model in self.groups.values()),
            "mem.cache.lane.entries": sum(
                model.drained_entries for model in self.groups.values()),
            "mem.cache.lane.memo_hits": sum(
                model.memo_hits for model in self.groups.values()),
        }
