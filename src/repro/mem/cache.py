"""Set-associative data-cache model.

This is a *timing and presence* model: the cache tracks which lines are
resident (tags + LRU) and charges hit/miss latencies, while data always
lives in the backing :class:`~repro.interp.memory.Memory`.  That split is
deliberate — it is what makes the Spectre leak visible and persistent:
when the Memory Conflict Buffer rolls architectural state back, the cache
deliberately keeps its (micro-architectural) state, exactly the paper's
point that "the cache has been affected by the speculative execution".

The guest interacts with the cache through timed loads/stores and the
custom ``cflush`` line-flush instruction (the paper's RISC-V attack flushes
line by line).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


#: Supported replacement policies.
REPLACEMENT_POLICIES = ("lru", "fifo", "random")


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level.

    Defaults follow a small embedded L1 D-cache, in the spirit of the
    VexRiscv-based Hybrid-DBT prototype: 16 KiB, 4-way, 64-byte lines,
    3-cycle hits, 30-cycle misses to main memory.

    ``replacement`` selects the victim policy: ``lru`` (default),
    ``fifo`` (insertion order, no refresh on hit), or ``random``
    (deterministic LCG so runs stay reproducible).
    """

    size_bytes: int = 16 * 1024
    line_size: int = 64
    associativity: int = 4
    hit_latency: int = 3
    miss_latency: int = 30
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.line_size & (self.line_size - 1):
            raise ValueError("line size must be a power of two")
        if self.size_bytes % (self.line_size * self.associativity):
            raise ValueError("cache size must be a multiple of line*ways")
        if self.hit_latency < 1 or self.miss_latency < self.hit_latency:
            raise ValueError("latencies must satisfy 1 <= hit <= miss")
        if self.replacement not in REPLACEMENT_POLICIES:
            raise ValueError(
                "unknown replacement policy %r (choose from %s)"
                % (self.replacement, ", ".join(REPLACEMENT_POLICIES))
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_size * self.associativity)


@dataclass
class CacheStats:
    """Aggregate access counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.flushes = 0


class SetAssociativeCache:
    """LRU set-associative cache (tags only, see module docstring)."""

    def __init__(self, config: Optional[CacheConfig] = None):
        self.config = config or CacheConfig()
        #: Per-set list of resident tags; LRU keeps most-recently-used
        #: last, FIFO keeps insertion order, RANDOM evicts via an LCG.
        self._sets: List[List[int]] = [[] for _ in range(self.config.num_sets)]
        self.stats = CacheStats()
        #: Deterministic LCG state for the 'random' policy.
        self._lcg_state = 0x2545F491
        # Geometry/policy unpacked from the (frozen) config: every timed
        # guest access goes through here, so avoid per-access attribute
        # and property chains.
        self._line_size = self.config.line_size
        self._line_mask = ~(self.config.line_size - 1)
        self._num_sets = self.config.num_sets
        self._assoc = self.config.associativity
        self._hit_latency = self.config.hit_latency
        self._miss_latency = self.config.miss_latency
        self._is_lru = self.config.replacement == "lru"
        self._is_random = self.config.replacement == "random"

    # ------------------------------------------------------------------
    # Address decomposition.
    # ------------------------------------------------------------------

    def line_address(self, address: int) -> int:
        """Address of the cache line containing ``address``."""
        return address & self._line_mask

    def _index_tag(self, address: int) -> Tuple[int, int]:
        line = address // self._line_size
        return line % self._num_sets, line // self._num_sets

    # ------------------------------------------------------------------
    # Access.
    # ------------------------------------------------------------------

    def access(self, address: int, size: int = 1) -> Tuple[bool, int]:
        """Access ``size`` bytes at ``address``.

        Returns ``(hit, latency_cycles)``.  An access spanning two lines
        is charged as the worse of the two and fills both.
        """
        mask = self._line_mask
        first_line = address & mask
        last_line = (address + max(size, 1) - 1) & mask
        if first_line == last_line:
            hit = self._touch(first_line)
        else:
            hit = True
            for line in range(first_line, last_line + 1, self._line_size):
                if not self._touch(line):
                    hit = False
        stats = self.stats
        if hit:
            stats.hits += 1
            return True, self._hit_latency
        stats.misses += 1
        return False, self._miss_latency

    def _touch(self, line_base: int) -> bool:
        """Access one line: update recency, fill on miss.  Returns hit."""
        line = line_base // self._line_size
        ways = self._sets[line % self._num_sets]
        tag = line // self._num_sets
        if tag in ways:
            if self._is_lru:
                ways.remove(tag)
                ways.append(tag)
            return True
        if len(ways) >= self._assoc:
            ways.pop(self._victim_position(len(ways)))
            self.stats.evictions += 1
        ways.append(tag)
        return False

    def _victim_position(self, occupancy: int) -> int:
        """Index of the way to evict under the configured policy."""
        if self._is_random:
            self._lcg_state = (self._lcg_state * 1103515245 + 12345) & 0x7FFFFFFF
            return self._lcg_state % occupancy
        return 0  # LRU and FIFO both evict the list head

    def probe(self, address: int) -> bool:
        """Whether the line holding ``address`` is resident (no LRU update,
        no fill, no stats) — a pure observer used by tests and metrics."""
        index, tag = self._index_tag(self.line_address(address))
        return tag in self._sets[index]

    # ------------------------------------------------------------------
    # Maintenance operations.
    # ------------------------------------------------------------------

    def flush_line(self, address: int) -> bool:
        """Invalidate the line holding ``address``; returns whether it was
        resident.  Implements the guest ``cflush`` instruction."""
        line = (address & self._line_mask) // self._line_size
        ways = self._sets[line % self._num_sets]
        tag = line // self._num_sets
        self.stats.flushes += 1
        if tag in ways:
            ways.remove(tag)
            return True
        return False

    def flush_all(self) -> None:
        """Invalidate every line."""
        for ways in self._sets:
            ways.clear()

    def resident_lines(self) -> List[int]:
        """Base addresses of all resident lines (diagnostics)."""
        lines = []
        for index, ways in enumerate(self._sets):
            for tag in ways:
                line_number = tag * self._num_sets + index
                lines.append(line_number * self._line_size)
        return sorted(lines)

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(ways) for ways in self._sets)
