"""Timed data-memory system: backing memory behind an L1 data cache.

This is the memory the VLIW core talks to.  Every load/store returns both
the value semantics (delegated to the flat :class:`Memory`) and a latency
in cycles (delegated to the cache model).  The translated code produced by
the DBT engine executes from a host-side translation cache, so there is no
instruction-side model — matching Hybrid-DBT, where the VLIW fetches from
a dedicated code memory written by the DBT engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..interp.memory import Memory
from .cache import CacheConfig, CacheStats, SetAssociativeCache


@dataclass(slots=True)
class AccessResult:
    """Outcome of one timed access."""

    value: int
    hit: bool
    latency: int


class DataMemorySystem:
    """Flat memory + L1 D-cache with load/store timing."""

    def __init__(
        self,
        memory: Optional[Memory] = None,
        cache_config: Optional[CacheConfig] = None,
        cache=None,
    ):
        self.memory = memory if memory is not None else Memory()
        #: ``cache`` may carry a pre-built timing model — a
        #: :class:`~repro.mem.vector.LaneView` lane of a multi-guest
        #: vector engine — exposing the exact
        #: :class:`SetAssociativeCache` interface; the default stays
        #: the scalar model.
        self.cache = cache if cache is not None \
            else SetAssociativeCache(cache_config)
        self._flush_latency = self.cache.config.hit_latency

    # ------------------------------------------------------------------
    # Timed accesses.
    # ------------------------------------------------------------------

    def load(self, address: int, width: int, signed: bool = False) -> AccessResult:
        """Timed load of ``width`` bytes."""
        hit, latency = self.cache.access(address, width)
        value = self.memory.load_int(address, width, signed=signed)
        return AccessResult(value=value, hit=hit, latency=latency)

    def store(self, address: int, value: int, width: int) -> AccessResult:
        """Timed store of ``width`` bytes (write-allocate)."""
        hit, latency = self.cache.access(address, width)
        self.memory.store_int(address, value, width)
        return AccessResult(value=value, hit=hit, latency=latency)

    def flush_line(self, address: int) -> int:
        """Guest ``cflush``: invalidate the line, charge a fixed cost."""
        self.cache.flush_line(address)
        return self._flush_latency

    # ------------------------------------------------------------------
    # Untimed accessors (setup, inspection).
    # ------------------------------------------------------------------

    def peek(self, address: int, width: int, signed: bool = False) -> int:
        """Read memory without touching the cache."""
        return self.memory.load_int(address, width, signed=signed)

    def poke(self, address: int, value: int, width: int) -> None:
        """Write memory without touching the cache."""
        self.memory.store_int(address, value, width)

    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    def line_size(self) -> int:
        return self.cache.config.line_size
