"""Deterministic, seed-driven fault injection.

Every fault the resilience layer defends against has a *named site*
(:class:`FaultSite`) and a concrete, reproducible corruption.  The
:class:`FaultInjector` decides **when** a site fires — the Nth
opportunity, with N drawn from a seeded RNG — so a chaos run with the
same seed injects exactly the same faults in exactly the same places.
The corruption helpers in this module perform the actual damage; the
supervisor and the parallel runner must then *detect and recover*
without being told a fault happened (the injector's own record is only
consulted afterwards, by the chaos harness, to score the run).

Engine-side sites are applied through
:class:`~repro.resilience.supervisor.ExecutionSupervisor` hooks; the
runner-side sites (:data:`RUNNER_SITES`) are applied by the chaos
harness and the hardened parallel runner
(:mod:`repro.platform.parallel`).
"""

from __future__ import annotations

import enum
import random
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..vliw.bundle import Bundle
from ..vliw.isa import VliwOpcode

#: Ordinal no fast-path dispatch arm handles; executing it raises
#: ``VliwExecutionError`` (see ``VliwCore._run_fast``'s else arm).
BAD_ORDINAL = 99


class FaultSite(enum.Enum):
    """Named fault-injection points across the stack."""

    #: Corrupt an installed translation-cache entry (truncate bundles).
    TCACHE_CORRUPT = "tcache-corrupt"
    #: Silently drop a hot translation-cache entry.
    TCACHE_EVICT = "tcache-evict"
    #: Strip a scheduler constraint from an optimized schedule (a buggy
    #: GhostBusters/scheduler pass that forgot to mark a load).
    SCHED_DROP_CONSTRAINT = "sched-drop-constraint"
    #: Corrupt the fast-path lowering (poison a finalized opcode ordinal).
    FASTPATH_CORRUPT = "fastpath-corrupt"
    #: Poison a block's tier-3 compiled host function (a miscompile).
    CODEGEN_CORRUPT = "codegen-corrupt"
    #: Flip a byte in an on-disk sweep-cache record.
    SWEEPCACHE_CORRUPT = "sweepcache-corrupt"
    #: Flip a byte in a persisted tier-3 codegen envelope.
    TCACHE_DISK_CORRUPT = "tcache-disk-corrupt"
    #: Kill a parallel sweep worker mid-point.
    WORKER_CRASH = "worker-crash"
    #: Hang a parallel sweep worker past the runner's timeout.
    WORKER_HANG = "worker-hang"
    #: Corrupt a tier-4 megablock driver at install (a mistraced or
    #: miscompiled trace; its integrity check fails at first dispatch).
    TRACE_GUARD_CORRUPT = "trace-guard-corrupt"
    #: Wedge the background compile queue's worker (jobs submit but
    #: never complete; the engine must keep running on lower tiers).
    COMPILE_QUEUE_HANG = "compile-queue-hang"
    #: Flip a byte in one line of the serve daemon's job journal.
    SERVE_JOURNAL_CORRUPT = "serve-journal-corrupt"
    #: Kill a warm serve worker mid-job (the daemon must re-lease).
    SERVE_WORKER_CRASH = "serve-worker-crash"
    #: Hang a warm serve worker past its lease deadline.
    SERVE_WORKER_HANG = "serve-worker-hang"
    #: Shrink one healthy lease so the watchdog expires it mid-job.
    SERVE_LEASE_EXPIRE = "serve-lease-expire"


#: Sites injected inside one supervised platform (detection: supervisor).
ENGINE_SITES = (
    FaultSite.TCACHE_CORRUPT,
    FaultSite.TCACHE_EVICT,
    FaultSite.SCHED_DROP_CONSTRAINT,
    FaultSite.FASTPATH_CORRUPT,
    FaultSite.CODEGEN_CORRUPT,
)

#: Sites injected around the parallel experiment runner (and the other
#: on-disk caches the chaos harness corrupts directly; each gets exactly
#: one opportunity per chaos run, so they always trigger on the first).
RUNNER_SITES = (
    FaultSite.SWEEPCACHE_CORRUPT,
    FaultSite.TCACHE_DISK_CORRUPT,
    FaultSite.WORKER_CRASH,
    FaultSite.WORKER_HANG,
)

#: Sites injected into the tier-4 trace/background-codegen machinery
#: (detection: the trace manager's retirement path and the compile
#: queue's stall counters — the fused dispatch path runs unsupervised
#: by definition).  A chaos run offers each only a handful of
#: opportunities, so like the runner sites they fire on the first —
#: which also keeps them out of the seeded RNG stream, so arming them
#: cannot shift the plans of the original sites.
TRACE_SITES = (
    FaultSite.TRACE_GUARD_CORRUPT,
    FaultSite.COMPILE_QUEUE_HANG,
)

#: Sites injected into the ``repro serve`` daemon (detection: the job
#: journal's replay validation, the fleet watchdog's lease/heartbeat
#: accounting).  Like the runner sites each gets one opportunity per
#: chaos run — and, like them, they never touch the seeded RNG stream,
#: so arming them cannot shift the plans of the original sites.
SERVE_SITES = (
    FaultSite.SERVE_JOURNAL_CORRUPT,
    FaultSite.SERVE_WORKER_CRASH,
    FaultSite.SERVE_WORKER_HANG,
    FaultSite.SERVE_LEASE_EXPIRE,
)


@dataclass
class FaultRecord:
    """One injected fault (the chaos harness's scoring evidence)."""

    site: FaultSite
    detail: str
    opportunity: int


class FaultInjector:
    """Seeded decision-maker for when each armed site fires.

    Each armed site fires on its Nth *opportunity* (N drawn once from
    the seed; runner sites always fire on the first, since a chaos run
    offers them exactly one).  ``fires_per_site`` bounds how often a
    site may fire; the default of one fault per site keeps recovery
    scoring unambiguous.
    """

    def __init__(self, seed: int = 0,
                 sites: Optional[Sequence[FaultSite]] = None,
                 fires_per_site: int = 1):
        self.seed = seed
        self.sites = frozenset(sites if sites is not None else FaultSite)
        self.rng = random.Random(seed)
        self._trigger: Dict[FaultSite, int] = {}
        # Draw in a fixed order so the plan depends only on the seed,
        # never on which sites happen to be armed.
        for site in sorted(FaultSite, key=lambda s: s.value):
            self._trigger[site] = (
                1 if (site in RUNNER_SITES or site in TRACE_SITES
                      or site in SERVE_SITES)
                else self.rng.randint(1, 2))
        self._opportunities: Dict[FaultSite, int] = {s: 0 for s in FaultSite}
        self._remaining: Dict[FaultSite, int] = {
            site: (fires_per_site if site in self.sites else 0)
            for site in FaultSite
        }
        self.fired: List[FaultRecord] = []

    def armed(self, site: FaultSite) -> bool:
        """Whether ``site`` may still fire (cheap pre-check for hooks)."""
        return self._remaining[site] > 0

    def should_fire(self, site: FaultSite) -> bool:
        """Count one opportunity for ``site``; True when it must fire now.

        A True return *consumes* one firing; the caller either performs
        the corruption and calls :meth:`record`, or calls :meth:`refund`
        if the corruption turned out to be inapplicable.
        """
        if self._remaining[site] <= 0:
            return False
        self._opportunities[site] += 1
        if self._opportunities[site] < self._trigger[site]:
            return False
        self._remaining[site] -= 1
        return True

    def record(self, site: FaultSite, detail: str) -> None:
        self.fired.append(
            FaultRecord(site, detail, self._opportunities[site]))

    def refund(self, site: FaultSite) -> None:
        """Undo a consumed firing (corruption was not applicable here);
        the site re-arms for its next opportunity."""
        self._remaining[site] += 1
        self._trigger[site] = self._opportunities[site] + 1

    def fired_sites(self) -> List[FaultSite]:
        return [record.site for record in self.fired]


# ---------------------------------------------------------------------------
# Corruption helpers (the actual damage, kept separate from the policy
# of when to apply it).  Each returns a human-readable detail string, or
# None when the corruption is not applicable to the given target.
# ---------------------------------------------------------------------------

def drop_finalized(block) -> None:
    """Discard a block's cached fast-path lowering (it will re-finalize
    on next execution)."""
    if getattr(block, "_finalized", None) is not None:
        block._finalized = None


def corrupt_translated_block(block) -> str:
    """Truncate the block's bundle list — a partially overwritten code
    cache entry.  The block now falls off the end without an exit, which
    both interpreters report as a ``VliwExecutionError``."""
    block.bundles = block.bundles[:-1]
    drop_finalized(block)
    return "truncated to %d bundles" % len(block.bundles)


def corrupt_finalized_block(block) -> Optional[str]:
    """Poison the first opcode ordinal of the block's finalized form —
    a corrupted fast-path lowering the reference interpreter never sees."""
    fblock = getattr(block, "_finalized", None)
    if fblock is None or not fblock.bundles:
        return None
    first = fblock.bundles[0]
    dops = list(first[0])
    if not dops:
        return None
    dops[0] = (BAD_ORDINAL,) + tuple(dops[0])[1:]
    fblock.bundles = ((tuple(dops),) + first[1:],) + fblock.bundles[1:]
    # On the compiled tier the host function was generated from the
    # (then-clean) lowering at install time; drop it so the corruption
    # is actually consumed on the next dispatch instead of masked by
    # stale-but-correct compiled code.
    fblock.compiled = None
    fblock.persist_key = None
    return "poisoned ordinal of op 0 in bundle 0"


def corrupt_schedule(block) -> Optional[str]:
    """Simulate a buggy scheduler/GhostBusters pass.

    Preferred corruption: clear the ``speculative`` marker on one
    MCB-tracked load — the exact bug class the paper's guarantee hinges
    on (an unconstrained speculative load).  Fallback for schedules with
    no speculation: swap the first two bundles, violating an enforced
    dependence edge.  Both are caught by ``check_schedule``.
    """
    for bundle_index, bundle in enumerate(block.bundles):
        for op_index, op in enumerate(bundle):
            if op.opcode is VliwOpcode.LOAD and op.speculative:
                ops = list(bundle.ops)
                ops[op_index] = replace(op, speculative=False, spec_tag=0)
                bundles = list(block.bundles)
                bundles[bundle_index] = Bundle(tuple(ops))
                block.bundles = tuple(bundles)
                drop_finalized(block)
                return ("cleared speculative marker on load in bundle %d"
                        % bundle_index)
    if len(block.bundles) >= 2:
        bundles = list(block.bundles)
        bundles[0], bundles[1] = bundles[1], bundles[0]
        block.bundles = tuple(bundles)
        drop_finalized(block)
        return "swapped bundles 0 and 1"
    return None


def poison_codegen(block) -> str:
    """Poison the block's tier-3 compiled host function — a miscompiled
    block the reference and fast tiers never see.  The poison lives on
    the :class:`~repro.vliw.block.TranslatedBlock` (so it survives a
    re-finalize, exactly like a deterministic codegen bug would) and the
    poisoned function is installed on every finalized form directly:
    merely clearing ``compiled`` would be masked by the tiering
    fallback, which runs uncompiled blocks on the fast interpreter."""
    from ..vliw.codegen import _compile_poisoned

    block._codegen_poison = True
    fblock = getattr(block, "_finalized", None)
    while fblock is not None:
        fblock.compiled = _compile_poisoned(fblock)
        fblock.persist_key = None
        fblock = fblock.recovery
    return "poisoned compiled host function"


def corrupt_codegen_cache(tcache_dir, rng: random.Random) -> Optional[str]:
    """Flip one byte in the middle of a seeded-random persisted codegen
    envelope (``--tcache-dir``); checksum/parse validation must catch it."""
    tcache_dir = Path(tcache_dir)
    entries = sorted(tcache_dir.glob("*.codegen.json"))
    if not entries:
        return None
    target = entries[rng.randrange(len(entries))]
    data = bytearray(target.read_bytes())
    if not data:
        return None
    position = len(data) // 2
    data[position] ^= 0xFF
    target.write_bytes(bytes(data))
    return "flipped byte %d of %s" % (position, target.name)


def corrupt_journal(journal_path, rng: random.Random,
                    event: Optional[str] = "done") -> Optional[str]:
    """Flip one byte in the middle of a seeded-random serve-journal line.

    ``event`` restricts the victim to lines carrying that journal event
    (default ``"done"`` — a lost result is the interesting corruption:
    the submit record survives, so replay must re-run the job and land
    on a bit-identical result).  Falls back to any line when no line
    matches.  The per-line checksum must catch the damage on replay.
    """
    journal_path = Path(journal_path)
    try:
        raw = journal_path.read_bytes()
    except OSError:
        return None
    lines = raw.split(b"\n")
    candidates = [index for index, line in enumerate(lines) if line.strip()]
    if event is not None:
        marker = b'"event": "%s"' % event.encode()
        matching = [index for index in candidates if marker in lines[index]]
        candidates = matching or candidates
    if not candidates:
        return None
    victim = candidates[rng.randrange(len(candidates))]
    line = bytearray(lines[victim])
    position = len(line) // 2
    line[position] ^= 0xFF
    lines[victim] = bytes(line)
    journal_path.write_bytes(b"\n".join(lines))
    return "flipped byte %d of journal line %d" % (position, victim)


def corrupt_sweep_cache(cache_dir, rng: random.Random) -> Optional[str]:
    """Flip one byte in the middle of a seeded-random sweep-cache record."""
    cache_dir = Path(cache_dir)
    entries = sorted(cache_dir.glob("*.json"))
    if not entries:
        return None
    target = entries[rng.randrange(len(entries))]
    data = bytearray(target.read_bytes())
    if not data:
        return None
    position = len(data) // 2
    data[position] ^= 0xFF
    target.write_bytes(bytes(data))
    return "flipped byte %d of %s" % (position, target.name)


# ---------------------------------------------------------------------------
# Worker faults (cross the process boundary; must stay picklable).
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkerFault:
    """A fault a sweep worker applies to itself before simulating."""

    kind: str            # 'crash' or 'hang'
    seconds: float = 30.0  # hang duration (bounded; workers self-heal)
    exit_code: int = 23


def apply_worker_fault(fault: Optional[WorkerFault]) -> None:
    """Executed inside a pool worker, before the real work.

    ``crash`` hard-exits the process (the parent sees a broken pool);
    ``hang`` sleeps past any reasonable per-point timeout and then
    proceeds normally — so a generous timeout turns the fault benign.
    """
    if fault is None:
        return
    if fault.kind == "crash":
        import os

        os._exit(fault.exit_code)
    elif fault.kind == "hang":
        time.sleep(fault.seconds)
    else:
        raise ValueError("unknown worker fault kind %r" % (fault.kind,))
