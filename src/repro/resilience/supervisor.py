"""Supervised execution: runtime gates, quarantine, degradation ladder.

The :class:`ExecutionSupervisor` is the runtime half of the paper's
trust argument.  The static legality verifier
(:func:`repro.dbt.verify.check_schedule`) can prove a schedule only
speculates where the policy allows — but in the seed it only ran inside
tests.  The supervisor promotes it to an **install-time gate** on every
optimized translation, and wraps block execution in a guarded mode that
turns any anomaly into a detect-quarantine-recover cycle instead of a
crash or (worse) silently wrong results:

* **gate failure** — an optimized schedule that violates a dependence or
  speculation invariant is never installed; the engine reschedules it,
  falling back to a speculation-disabled schedule if the violation
  persists;
* **fast-path exception** — a fault during block execution rolls the
  architectural state back to the block entry (registers, memory,
  cycle, scoreboard) and walks the block down the degradation ladder:
  re-finalize the fast-path lowering → reference interpreter →
  quarantine + speculation-free retranslation;
* **unexpected eviction** — a translation the supervisor saw installed
  that vanishes without a legitimate capacity flush is detected at
  lookup and healed by retranslation;
* **lockstep divergence** — reported by
  :func:`repro.platform.lockstep.lockstep_run`; the offending block is
  quarantined.

Every detection and recovery is counted in :class:`SupervisorStats` and
emitted through the :mod:`repro.obs` observer when one is attached.
When no supervisor is attached the platform runs the exact seed code
paths (one ``is not None`` check per hook — the same no-Heisenberg
contract the observer keeps, regression-tested in
``tests/resilience/test_no_heisenberg.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set

from ..dbt.verify import ScheduleViolation, check_schedule
from ..obs.observer import Observer
from . import faults as _faults
from .faults import FaultInjector, FaultSite


class ResilienceError(RuntimeError):
    """Raised when every rung of the degradation ladder has failed."""


@dataclass
class SupervisorConfig:
    """Supervisor tunables."""

    #: Run ``check_schedule`` on every optimized install (the gate).
    verify_installs: bool = True
    #: How many degradation-ladder rungs to try after a failed execution.
    #: Capped at the active ladder's length: 3 rungs on the fast/reference
    #: tiers (re-finalize → reference → retranslate), 4 on the compiled
    #: tier (re-finalize → fast path → reference → retranslate).
    max_block_retries: int = 4
    #: Executions before a block is eviction-eligible for the injector.
    eviction_hotness: int = 4


@dataclass
class SupervisorStats:
    """Detection and recovery counters."""

    installs_verified: int = 0
    gate_failures: int = 0
    execution_faults: int = 0
    evictions_detected: int = 0
    divergences: int = 0
    quarantines: int = 0
    recoveries: int = 0
    #: Successful recoveries per ladder rung / gate stage.
    ladder: Dict[str, int] = field(default_factory=dict)

    @property
    def detections(self) -> int:
        return (self.gate_failures + self.execution_faults
                + self.evictions_detected + self.divergences)

    def summary(self) -> str:
        parts = [
            "installs verified : %d" % self.installs_verified,
            "detections        : %d (gate %d, execution %d, eviction %d, "
            "divergence %d)" % (self.detections, self.gate_failures,
                                self.execution_faults,
                                self.evictions_detected, self.divergences),
            "quarantines       : %d" % self.quarantines,
            "recoveries        : %d" % self.recoveries,
        ]
        if self.ladder:
            parts.append("ladder            : " + ", ".join(
                "%s=%d" % (rung, count)
                for rung, count in sorted(self.ladder.items())))
        return "\n".join(parts)


#: Degradation-ladder rungs, in order of decreasing performance.
_LADDER = ("refinalize", "reference", "retranslate")
#: Extended ladder for cores on the tier-3 compiled interpreter: a
#: compiled-code fault first retries on the finalized fast path (same
#: translation, interpreted instead of compiled) before degrading
#: further — a deterministic codegen bug is healed one tier down, not
#: by throwing the translation away.
_LADDER_COMPILED = ("refinalize", "fastpath", "reference", "retranslate")


class ExecutionSupervisor:
    """Runtime anomaly detection and recovery for one platform.

    Attach by passing ``supervisor=`` to
    :class:`~repro.platform.system.DbtSystem`; the system wires the
    supervisor into the DBT engine (install gate, eviction tracking) and
    flips the core into guarded execution.  An optional
    :class:`~repro.resilience.faults.FaultInjector` lets the chaos
    harness corrupt the very structures the supervisor watches.
    """

    def __init__(self, config: Optional[SupervisorConfig] = None,
                 injector: Optional[FaultInjector] = None,
                 observer: Optional[Observer] = None):
        self.config = config or SupervisorConfig()
        self.injector = injector
        self.observer = observer
        self.stats = SupervisorStats()
        #: The attached platform (set by :meth:`attach`); consulted so
        #: tier-3-only fault sites never fire on a core that would never
        #: execute compiled code.
        self._system = None
        #: Entries the supervisor has seen installed (eviction tracking).
        self._installed: Set[int] = set()
        #: Entries detected missing, awaiting their healing re-install.
        self._missing: Set[int] = set()
        self._seen_flushes = 0
        #: Per-entry execution counts (injector eviction eligibility).
        self._exec_counts: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Wiring.
    # ------------------------------------------------------------------

    def attach(self, system) -> None:
        """Wire this supervisor through ``system``'s engine and core."""
        self._system = system
        system.engine.supervisor = self
        system.core.guard_faults = True
        # LRU-mode partial evictions are legitimate; hear about each one
        # so the eviction watch never flags them as anomalies.
        system.engine.cache.evict_listeners.append(self.note_capacity_eviction)
        if self.observer is None and system.observer is not None:
            self.observer = system.observer

    def _emit(self, name: str, **attrs) -> None:
        if self.observer is not None:
            self.observer.emit(name, **attrs)

    def _recovered(self, how: str, entry: int) -> None:
        self.stats.recoveries += 1
        self.stats.ladder[how] = self.stats.ladder.get(how, 0) + 1
        self._emit("resilience_recovered", entry="%#x" % entry, how=how)

    # ------------------------------------------------------------------
    # Engine hooks: install gate + eviction tracking.
    # ------------------------------------------------------------------

    def note_lookup_miss(self, pc: int, cache) -> None:
        """A translation-cache miss; detect unexpected disappearances."""
        flushes = cache.stats.capacity_flushes
        if flushes != self._seen_flushes:
            # A legitimate wholesale capacity flush dropped everything.
            self._seen_flushes = flushes
            self._installed.clear()
            return
        if pc in self._installed:
            self._installed.discard(pc)
            self._missing.add(pc)
            self.stats.evictions_detected += 1
            self._emit("resilience_unexpected_eviction", entry="%#x" % pc)

    def note_capacity_eviction(self, entry: int) -> None:
        """The cache's LRU mode legitimately evicted ``entry``; stop
        tracking it so the next lookup miss is not flagged."""
        self._installed.discard(entry)
        self._exec_counts.pop(entry, None)

    def post_install(self, block, cache) -> None:
        """A translation was installed; register it and let the injector
        attack it (corruption must be detected later, not remembered)."""
        entry = block.guest_entry
        flushes = cache.stats.capacity_flushes
        if flushes != self._seen_flushes:
            # This install triggered a legitimate wholesale capacity
            # flush: everything previously tracked is gone by design.
            self._seen_flushes = flushes
            self._installed.clear()
        if entry in self._missing:
            self._missing.discard(entry)
            self._recovered("refill", entry)
        self._installed.add(entry)
        injector = self.injector
        if injector is None:
            return
        if (injector.armed(FaultSite.TCACHE_CORRUPT)
                and injector.should_fire(FaultSite.TCACHE_CORRUPT)):
            injector.record(FaultSite.TCACHE_CORRUPT,
                            "%#x: %s" % (entry,
                                         _faults.corrupt_translated_block(block)))
        if (injector.armed(FaultSite.FASTPATH_CORRUPT)
                and injector.should_fire(FaultSite.FASTPATH_CORRUPT)):
            detail = _faults.corrupt_finalized_block(block)
            if detail is None:
                injector.refund(FaultSite.FASTPATH_CORRUPT)
            else:
                injector.record(FaultSite.FASTPATH_CORRUPT,
                                "%#x: %s" % (entry, detail))
        if (injector.armed(FaultSite.CODEGEN_CORRUPT)
                and self._system is not None
                and self._system.core.use_compiled
                and injector.should_fire(FaultSite.CODEGEN_CORRUPT)):
            injector.record(FaultSite.CODEGEN_CORRUPT,
                            "%#x: %s" % (entry, _faults.poison_codegen(block)))

    def gate_schedule(self, entry: int, ir, block, vliw_config,
                      reschedule: Callable[[], object],
                      reschedule_safe: Callable[[], object]):
        """Install-time legality gate for an optimized schedule.

        Returns the block to install — the candidate itself when it
        verifies, otherwise the first ladder replacement that does:
        a clean reschedule, then a speculation-disabled schedule.
        """
        injector = self.injector
        if (injector is not None
                and injector.armed(FaultSite.SCHED_DROP_CONSTRAINT)
                and injector.should_fire(FaultSite.SCHED_DROP_CONSTRAINT)):
            detail = _faults.corrupt_schedule(block)
            if detail is None:
                injector.refund(FaultSite.SCHED_DROP_CONSTRAINT)
            else:
                injector.record(FaultSite.SCHED_DROP_CONSTRAINT,
                                "%#x: %s" % (entry, detail))
        if not self.config.verify_installs:
            return block
        self.stats.installs_verified += 1
        try:
            check_schedule(ir, block, vliw_config)
            return block
        except ScheduleViolation as violation:
            self.stats.gate_failures += 1
            self._emit("resilience_gate_failure", entry="%#x" % entry,
                       error=str(violation))
        candidate = reschedule()
        try:
            check_schedule(ir, candidate, vliw_config)
        except ScheduleViolation:
            self.stats.gate_failures += 1
            candidate = reschedule_safe()
            try:
                check_schedule(ir, candidate, vliw_config)
            except ScheduleViolation as violation:
                raise ResilienceError(
                    "block %#x: even the speculation-disabled schedule "
                    "fails the legality gate" % entry) from violation
            self._recovered("schedule_safe", entry)
            return candidate
        self._recovered("reschedule", entry)
        return candidate

    # ------------------------------------------------------------------
    # Core hook: guarded execution with the degradation ladder.
    # ------------------------------------------------------------------

    def execute(self, system, block):
        """Execute ``block``, recovering from faults down the ladder.

        Returns ``(result, block)`` — the block may have been replaced
        by a quarantine-and-retranslate recovery.
        """
        from ..vliw.pipeline import BlockExecutionFault

        core = system.core
        entry = block.guest_entry
        try:
            result = core.execute_block(block)
            self._post_execute(system, block)
            return result, block
        except BlockExecutionFault as fault:
            self._fault_detected(entry, "initial", fault)
            last_fault = fault
        ladder = _LADDER_COMPILED if core.use_compiled else _LADDER
        for rung in ladder[:max(0, self.config.max_block_retries)]:
            try:
                if rung == "refinalize":
                    _faults.drop_finalized(block)
                    result = core.execute_block(block)
                elif rung == "fastpath":
                    result = self._execute_fastpath(core, block)
                elif rung == "reference":
                    result = self._execute_reference(core, block)
                else:
                    block = self._retranslate(system, entry)
                    result = core.execute_block(block)
            except BlockExecutionFault as fault:
                self._fault_detected(entry, rung, fault)
                last_fault = fault
                continue
            self._recovered(rung, entry)
            self._post_execute(system, block)
            return result, block
        raise ResilienceError(
            "block %#x failed every rung of the degradation ladder"
            % entry) from last_fault

    def _fault_detected(self, entry: int, stage: str, fault) -> None:
        self.stats.execution_faults += 1
        self._emit("resilience_execution_fault", entry="%#x" % entry,
                   stage=stage, error=str(fault.cause))

    def _execute_fastpath(self, core, block):
        """One execution on the finalized fast path (compiled tier off)."""
        saved = core.use_compiled
        core.use_compiled = False
        try:
            return core.execute_block(block)
        finally:
            core.use_compiled = saved

    def _execute_reference(self, core, block):
        saved = (core.use_fast_path, core.use_compiled)
        core.use_fast_path = False
        core.use_compiled = False
        try:
            return core.execute_block(block)
        finally:
            core.use_fast_path, core.use_compiled = saved

    def _retranslate(self, system, entry: int):
        """Quarantine the installed translation and rebuild from guest
        code with a speculation-free first-pass schedule."""
        self.stats.quarantines += 1
        self._installed.discard(entry)
        self._exec_counts.pop(entry, None)
        system.engine.cache.invalidate(entry)
        self._emit("resilience_quarantine", entry="%#x" % entry)
        return system.engine.lookup(entry)

    def _post_execute(self, system, block) -> None:
        """Successful execution bookkeeping (injector eviction site).

        The eviction fault only targets *optimized* blocks executed at
        least ``eviction_hotness`` times: those are loop bodies that are
        guaranteed to be looked up again (so the disappearance is
        observable) and are not about to be legitimately replaced by
        the optimizer (which would mask the fault).
        """
        injector = self.injector
        if injector is None or not injector.armed(FaultSite.TCACHE_EVICT):
            return
        if block.kind != "optimized":
            return
        entry = block.guest_entry
        count = self._exec_counts.get(entry, 0) + 1
        self._exec_counts[entry] = count
        if count < self.config.eviction_hotness:
            return
        if injector.should_fire(FaultSite.TCACHE_EVICT):
            if system.engine.cache.invalidate(entry):
                injector.record(
                    FaultSite.TCACHE_EVICT,
                    "%#x evicted after execution %d" % (entry, count))
            else:
                injector.refund(FaultSite.TCACHE_EVICT)

    # ------------------------------------------------------------------
    # External detectors.
    # ------------------------------------------------------------------

    def note_divergence(self, entry: int, cache=None, detail: str = "") -> None:
        """A lockstep (or other differential) checker caught this block
        producing divergent architectural state; quarantine it."""
        self.stats.divergences += 1
        self._emit("resilience_divergence", entry="%#x" % entry,
                   detail=detail)
        if cache is not None and cache.invalidate(entry):
            self.stats.quarantines += 1
            self._installed.discard(entry)
