"""The ``repro chaos`` fault matrix: inject → detect → recover → verify.

For every named :class:`~repro.resilience.faults.FaultSite` the matrix
runs a small scenario with that one site armed, then scores four
booleans the resilience layer must earn:

* **fired** — the injector actually applied the corruption (a scenario
  that never offers the site an opportunity proves nothing);
* **detected** — the supervisor (engine sites) or the hardened runner's
  telemetry (runner sites) registered at least one anomaly, *without*
  being told a fault happened;
* **recovered** — the run still completed;
* **identical** — the recovered run is bit-identical to a fault-free
  reference in everything architectural: exit code and output bytes
  (which carry the attack's recovered secret).  Cycle counts are
  excluded — recovery legitimately costs time.

Engine sites run twice, on a polybench kernel under GHOSTBUSTERS and on
the Spectre-v1 PoC under UNSAFE, so corruption is exercised on both a
compute workload and the attack the paper is about.  Runner sites drive
small real sweeps through :func:`repro.platform.parallel.run_points`.

``repro chaos --seed N`` reruns the exact same fault plan; CI gates on
seed 0 (every row must come back ``ok``).
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..attacks.harness import AttackVariant, build_attack_program
from ..attacks.spectre_v1 import DEFAULT_SECRET
from ..dbt.engine import DbtEngineConfig
from ..kernels import SMALL_SIZES, build_kernel_program
from ..obs.leakage import recovered_prefix
from ..obs.pipeline import TelemetryConfig, spool_envelope, worker_observer
from ..platform.comparison import comparison_json
from ..platform.parallel import (
    ParallelRunError,
    RunnerTelemetry,
    sweep_comparisons,
)
from ..platform.system import DbtSystem
from ..security.policy import MitigationPolicy
from ..dbt.traces import TraceConfig
from .faults import (
    ENGINE_SITES,
    FaultInjector,
    FaultSite,
    WorkerFault,
    corrupt_codegen_cache,
    corrupt_journal,
    corrupt_sweep_cache,
)
from .supervisor import ExecutionSupervisor


@dataclass
class ChaosOutcome:
    """Scorecard of one (fault site, scenario) cell."""

    site: FaultSite
    scenario: str
    fired: bool
    detected: bool
    recovered: bool
    identical: bool
    detail: str = ""
    #: Leak meter — ``"n/m"`` secret bytes recovered for attack
    #: scenarios, ``"-"`` for compute scenarios (nothing to leak).
    leak: str = "-"

    @property
    def ok(self) -> bool:
        return self.fired and self.detected and self.recovered and self.identical


def format_chaos_table(outcomes: List[ChaosOutcome]) -> str:
    """Render the matrix; failing rows keep their detail for triage."""
    def _mark(flag: bool) -> str:
        return "yes" if flag else "NO"

    width = max([len(o.scenario) for o in outcomes] + [len("scenario")])
    header = ("%-22s %-*s %-6s %-9s %-10s %-10s %-6s %s"
              % ("site", width, "scenario", "fired", "detected",
                 "recovered", "identical", "leak", "ok"))
    lines = [header, "-" * len(header)]
    for outcome in outcomes:
        lines.append("%-22s %-*s %-6s %-9s %-10s %-10s %-6s %s"
                     % (outcome.site.value, width, outcome.scenario,
                        _mark(outcome.fired), _mark(outcome.detected),
                        _mark(outcome.recovered), _mark(outcome.identical),
                        outcome.leak,
                        "ok" if outcome.ok else "FAIL"))
        if not outcome.ok and outcome.detail:
            lines.append("    detail: %s" % outcome.detail)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Engine-side scenarios (one supervised platform per cell).
# ---------------------------------------------------------------------------

#: Hotness threshold the chaos guests run with — low, so optimized
#: blocks (the interesting fault targets) appear within the first few
#: loop iterations and scenarios stay cheap.
_CHAOS_ENGINE_CONFIG = DbtEngineConfig(hot_threshold=4)
#: Same matrix with block chaining on: mid-chain corruption/eviction
#: must still be detected and recovered (``repro chaos --chain``).
_CHAOS_CHAINED_CONFIG = DbtEngineConfig(hot_threshold=4, chain=True)


def _chaos_engine_config(chain: bool) -> DbtEngineConfig:
    return _CHAOS_CHAINED_CONFIG if chain else _CHAOS_ENGINE_CONFIG


def _chaos_guests(kernel: str):
    return [
        ("kernel:%s" % kernel,
         build_kernel_program(SMALL_SIZES[kernel]()),
         MitigationPolicy.GHOSTBUSTERS),
        ("attack:spectre_v1",
         build_attack_program(AttackVariant.SPECTRE_V1),
         MitigationPolicy.UNSAFE),
    ]


def _leak_meter(scenario: str, output: bytes) -> str:
    """``"n/m"`` secret bytes at the head of ``output`` for attack
    scenarios; compute scenarios have nothing to leak."""
    if not scenario.startswith("attack:"):
        return "-"
    return "%d/%d" % (recovered_prefix(output, DEFAULT_SECRET),
                      len(DEFAULT_SECRET))


def _engine_cell(site: FaultSite, seed: int, scenario: str, program,
                 policy: MitigationPolicy, reference,
                 chain: bool = False,
                 interpreter: Optional[str] = None,
                 telemetry: Optional[TelemetryConfig] = None) -> ChaosOutcome:
    injector = FaultInjector(seed=seed, sites=[site])
    supervisor = ExecutionSupervisor(injector=injector)
    # Observer attach is chaos-safe: supervised cells always take the
    # general dispatch path, so the fault-opportunity stream is
    # unchanged whether or not telemetry is collected.
    observer = worker_observer(telemetry)
    try:
        result = DbtSystem(program, policy=policy,
                           engine_config=_chaos_engine_config(chain),
                           interpreter=interpreter,
                           supervisor=supervisor, observer=observer).run()
    except Exception as error:  # noqa: BLE001 — scored, not propagated
        spool_envelope(telemetry, observer, failed=True)
        return ChaosOutcome(
            site, scenario, fired=bool(injector.fired),
            detected=supervisor.stats.detections > 0,
            recovered=False, identical=False,
            detail="%s: %s" % (type(error).__name__, error))
    spool_envelope(telemetry, observer)
    fired = len(injector.fired)
    return ChaosOutcome(
        site, scenario,
        fired=fired > 0,
        detected=supervisor.stats.detections >= fired and fired > 0,
        recovered=supervisor.stats.recoveries >= fired and fired > 0,
        identical=(result.exit_code, result.output)
                  == (reference.exit_code, reference.output),
        detail="; ".join(record.detail for record in injector.fired)
               or "fault never fired",
        leak=_leak_meter(scenario, result.output),
    )


# ---------------------------------------------------------------------------
# Tier-4 trace/background-codegen scenarios.  These force chaining plus
# the trace tier regardless of the matrix-level flags (megablocks exist
# nowhere else) and detect through the trace manager's own retirement
# path and the compile queue's stall counters — the fused dispatch runs
# unsupervised by design, so the supervisor cannot be the detector here.
# ---------------------------------------------------------------------------

#: Low trace thresholds so the short chaos guests actually record and
#: install megablocks (the interesting fault targets) within their first
#: few loop iterations.
_CHAOS_TRACE_CONFIG = TraceConfig(hot_threshold=3, branch_min_samples=4)


def _trace_guard_cell(seed: int, scenario: str, program,
                      policy: MitigationPolicy, reference,
                      telemetry: Optional[TelemetryConfig] = None,
                      ) -> ChaosOutcome:
    """Corrupt a megablock driver at install: its integrity check must
    fail on first dispatch, the trace manager must retire and blacklist
    it, and the run must complete per-block with identical output."""
    site = FaultSite.TRACE_GUARD_CORRUPT
    injector = FaultInjector(seed=seed, sites=[site])
    observer = worker_observer(telemetry)
    system = DbtSystem(program, policy=policy,
                       engine_config=_CHAOS_CHAINED_CONFIG,
                       interpreter="trace",
                       trace_config=_CHAOS_TRACE_CONFIG,
                       observer=observer)
    system.traces.injector = injector
    try:
        result = system.run()
    except Exception as error:  # noqa: BLE001 — scored, not propagated
        spool_envelope(telemetry, observer, failed=True)
        return ChaosOutcome(
            site, scenario, fired=bool(injector.fired), detected=False,
            recovered=False, identical=False,
            detail="%s: %s" % (type(error).__name__, error))
    spool_envelope(telemetry, observer)
    fired = len(injector.fired)
    stats = system.traces.stats
    return ChaosOutcome(
        site, scenario,
        fired=fired > 0,
        detected=fired > 0 and stats.corrupt_retired >= fired,
        recovered=True,
        identical=(result.exit_code, result.output)
                  == (reference.exit_code, reference.output),
        detail="; ".join(record.detail for record in injector.fired)
               or "no megablock installed",
        leak=_leak_meter(scenario, result.output),
    )


def _queue_hang_cell(seed: int, scenario: str, program,
                     policy: MitigationPolicy, reference,
                     telemetry: Optional[TelemetryConfig] = None,
                     ) -> ChaosOutcome:
    """Wedge the background compile queue's worker: submitted trace
    compiles must never surface, the engine must keep running on the
    per-block tiers, and close-time accounting must count the stall."""
    site = FaultSite.COMPILE_QUEUE_HANG
    injector = FaultInjector(seed=seed, sites=[site])
    observer = worker_observer(telemetry)
    system = DbtSystem(program, policy=policy,
                       engine_config=_CHAOS_CHAINED_CONFIG,
                       interpreter="trace",
                       trace_config=_CHAOS_TRACE_CONFIG,
                       compile_queue_mode="thread",
                       observer=observer)
    system.compile_queue.injector = injector
    try:
        result = system.run()
    except Exception as error:  # noqa: BLE001 — scored, not propagated
        spool_envelope(telemetry, observer, failed=True)
        return ChaosOutcome(
            site, scenario, fired=bool(injector.fired), detected=False,
            recovered=False, identical=False,
            detail="%s: %s" % (type(error).__name__, error))
    spool_envelope(telemetry, observer)
    queue = system.compile_queue
    return ChaosOutcome(
        site, scenario,
        fired=bool(injector.fired),
        detected=queue.hung and queue.stats.stalled >= 1,
        recovered=True,
        identical=(result.exit_code, result.output)
                  == (reference.exit_code, reference.output),
        detail="; ".join(record.detail for record in injector.fired)
               or "no compile ever submitted",
        leak=_leak_meter(scenario, result.output),
    )


# ---------------------------------------------------------------------------
# Runner-side scenarios (small real sweeps through the hardened runner).
# ---------------------------------------------------------------------------

_SWEEP_POLICIES = (MitigationPolicy.UNSAFE, MitigationPolicy.GHOSTBUSTERS)


def _sweep_rows(workloads, **kwargs) -> str:
    return comparison_json(sweep_comparisons(
        workloads, policies=_SWEEP_POLICIES,
        engine_config=_CHAOS_ENGINE_CONFIG, **kwargs))


def _sweepcache_cell(seed: int, scenario: str, workloads, baseline: str,
                     work_dir: Path,
                     point_telemetry: Optional[TelemetryConfig] = None,
                     ) -> ChaosOutcome:
    cache_dir = work_dir / "sweep-cache"
    _sweep_rows(workloads, cache_dir=cache_dir)  # populate
    detail = corrupt_sweep_cache(cache_dir, random.Random(seed))
    telemetry = RunnerTelemetry()
    rows = _sweep_rows(workloads, cache_dir=cache_dir, telemetry=telemetry,
                       point_telemetry=point_telemetry)
    return ChaosOutcome(
        FaultSite.SWEEPCACHE_CORRUPT, scenario,
        fired=detail is not None,
        detected=telemetry.quarantined_cache_files >= 1,
        recovered=True,
        identical=rows == baseline,
        detail=detail or "no cache files to corrupt",
    )


def _tcache_disk_cell(seed: int, scenario: str, program,
                      policy: MitigationPolicy, work_dir: Path,
                      chain: bool,
                      telemetry: Optional[TelemetryConfig] = None,
                      ) -> ChaosOutcome:
    """Corrupt a persisted tier-3 codegen envelope between two compiled
    runs sharing a ``--tcache-dir``.  The second run must quarantine the
    corrupt envelope (never execute it), recompile, and still produce
    architecturally identical output."""
    tcache_dir = work_dir / "tcache"
    config = _chaos_engine_config(chain)
    cold = DbtSystem(program, policy=policy, engine_config=config,
                     interpreter="compiled", tcache_dir=tcache_dir).run()
    detail = corrupt_codegen_cache(tcache_dir, random.Random(seed))
    observer = worker_observer(telemetry)
    warm = DbtSystem(program, policy=policy, engine_config=config,
                     interpreter="compiled", tcache_dir=tcache_dir,
                     observer=observer).run()
    spool_envelope(telemetry, observer)
    return ChaosOutcome(
        FaultSite.TCACHE_DISK_CORRUPT, scenario,
        fired=detail is not None,
        detected=warm.codegen is not None and warm.codegen.quarantined >= 1,
        recovered=True,
        identical=(warm.exit_code, warm.output)
                  == (cold.exit_code, cold.output),
        detail=detail or "no codegen envelopes to corrupt",
        leak=_leak_meter(scenario, warm.output),
    )


def _worker_cell(site: FaultSite, scenario: str, workloads, baseline: str,
                 fault: WorkerFault, jobs: int,
                 timeout: Optional[float],
                 point_telemetry: Optional[TelemetryConfig] = None,
                 ) -> ChaosOutcome:
    telemetry = RunnerTelemetry()
    try:
        rows = _sweep_rows(workloads, jobs=jobs, timeout=timeout,
                           retries=2, backoff=0.1, telemetry=telemetry,
                           worker_faults={0: fault},
                           point_telemetry=point_telemetry)
        recovered = True
        identical = rows == baseline
        detail = telemetry.summary()
    except ParallelRunError as error:
        recovered = False
        identical = False
        detail = str(error)
    detected = (telemetry.crashes >= 1 if fault.kind == "crash"
                else telemetry.timeouts >= 1)
    return ChaosOutcome(site, scenario, fired=True, detected=detected,
                        recovered=recovered, identical=identical,
                        detail=detail)


# ---------------------------------------------------------------------------
# Service-side scenarios (a real serve daemon per cell: warm fleet,
# journal, watchdog).  Each cell submits the same small sweep the runner
# cells use, so "identical" means the daemon's job result matches the
# one-shot baseline byte for byte — the ISSUE's durability bar.
# ---------------------------------------------------------------------------

def _serve_sweep_payload(kernel: str) -> dict:
    """The sweep job whose result must equal ``_sweep_rows(workloads)``."""
    return {
        "kind": "sweep", "kernels": [kernel],
        "policies": [policy.value for policy in _SWEEP_POLICIES],
        "engine": {"hot_threshold": _CHAOS_ENGINE_CONFIG.hot_threshold},
    }


def _serve_fault_cell(site: FaultSite, seed: int, scenario: str,
                      kernel: str, baseline: str, work_dir: Path,
                      hang_timeout: float) -> ChaosOutcome:
    """Inject one serve fault (worker crash/hang, lease expiry) into a
    live daemon while it runs the baseline sweep; the watchdog must
    detect, the retry must heal, and the result must stay identical."""
    from ..serve import ServeConfig, ServeDaemon

    injector = FaultInjector(seed=seed, sites=[site])
    config = ServeConfig(workers=1, work_dir=work_dir / site.value,
                         backoff=0.1,
                         lease_timeout=hang_timeout,
                         heartbeat_timeout=hang_timeout)
    daemon = ServeDaemon(config, injector=injector)
    daemon.start()
    try:
        payload = _serve_sweep_payload(kernel)
        job_id = daemon.submit(payload)
        record = daemon.wait(job_id, timeout=hang_timeout * 10 + 120)
    finally:
        daemon.stop(drain=False)
    stats = daemon.stats
    detected = {
        FaultSite.SERVE_WORKER_CRASH: stats.worker_crashes >= 1,
        FaultSite.SERVE_WORKER_HANG:
            stats.lease_expiries + stats.worker_hangs >= 1,
        FaultSite.SERVE_LEASE_EXPIRE: stats.lease_expiries >= 1,
    }[site]
    done = record is not None and record.result is not None
    return ChaosOutcome(
        site, scenario,
        fired=bool(injector.fired),
        detected=detected and stats.requeues >= 1,
        recovered=done and stats.completed == 1,
        identical=done and record.result.get("rows") == baseline,
        detail="; ".join(r.detail for r in injector.fired)
               or "fault never fired",
    )


def _serve_journal_cell(seed: int, scenario: str, kernel: str,
                        baseline: str, work_dir: Path) -> ChaosOutcome:
    """Corrupt a committed ``done`` line between two daemon lifetimes.

    The checksum must catch the damage on replay, the job (whose submit
    line survives) must re-run, and the re-run — simulation being
    deterministic — must land on the bit-identical result."""
    from ..serve import ServeConfig, ServeDaemon

    site = FaultSite.SERVE_JOURNAL_CORRUPT
    serve_dir = work_dir / site.value
    # compact_on_stop would fold the history into snapshots and erase
    # the per-event structure this corruption targets.
    config = ServeConfig(workers=1, work_dir=serve_dir,
                         compact_on_stop=False)
    daemon = ServeDaemon(config)
    daemon.start()
    try:
        job_id = daemon.submit(_serve_sweep_payload(kernel))
        first = daemon.wait(job_id, timeout=180)
    finally:
        daemon.stop(drain=False)
    if first is None or first.result is None:
        return ChaosOutcome(site, scenario, fired=False, detected=False,
                            recovered=False, identical=False,
                            detail="baseline daemon run failed")
    detail = corrupt_journal(config.journal, random.Random(seed))
    restarted = ServeDaemon(ServeConfig(workers=1, work_dir=serve_dir))
    restarted.start()
    try:
        record = restarted.wait(job_id, timeout=180)
    finally:
        restarted.stop(drain=False)
    done = record is not None and record.result is not None
    return ChaosOutcome(
        site, scenario,
        fired=detail is not None,
        detected=restarted.stats.replayed_corrupt_lines >= 1,
        recovered=done and restarted.stats.completed == 1,
        identical=done and record.result.get("rows") == baseline,
        detail=detail or "journal had no line to corrupt",
    )


# ---------------------------------------------------------------------------
# The matrix.
# ---------------------------------------------------------------------------

def run_chaos_matrix(
    seed: int = 0,
    kernel: str = "atax",
    jobs: int = 2,
    hang_timeout: float = 8.0,
    work_dir: Optional[Union[str, Path]] = None,
    chain: bool = False,
    interpreter: Optional[str] = None,
    telemetry: Optional[TelemetryConfig] = None,
    trace: bool = True,
    serve: bool = True,
) -> List[ChaosOutcome]:
    """Run every fault site's scenario; returns one outcome per cell.

    Deterministic in ``seed``: the same seed yields the same fault plan
    (and therefore the same table).  ``hang_timeout`` is the per-point
    timeout the hung-worker scenario must survive; the injected hang
    sleeps several times longer, so detection is unambiguous.
    ``chain`` runs the engine scenarios with block chaining enabled, so
    mid-chain faults exercise the chain-unlink paths.  ``interpreter``
    selects the host tier the engine scenarios run on; the two tier-3
    sites (``codegen-corrupt``, ``tcache-disk-corrupt``) always run
    compiled regardless, since they have nothing to corrupt elsewhere.
    ``telemetry`` threads the cross-process telemetry pipeline through
    every cell: engine cells spool one envelope each, and the runner
    scenarios pass per-point configs down the hardened runner.
    ``trace`` includes the tier-4 cells (megablock driver corruption,
    compile-queue hang); these always run chained on the trace tier
    regardless of ``chain``/``interpreter``, since megablocks exist
    nowhere else.  ``serve`` includes the service cells: each spins up
    a real ``repro serve`` daemon (warm fleet + journal + watchdog),
    injects one ``serve-*`` fault, and requires the submitted sweep to
    complete exactly once with a result identical to the one-shot
    baseline.
    """
    jobs = max(2, jobs)  # runner faults only apply under a real pool
    outcomes: List[ChaosOutcome] = []

    guests = _chaos_guests(kernel)
    # One fault-free reference per guest.  The three host tiers are
    # bit-identical in everything architectural (the differential gate),
    # so these references also serve the always-compiled tier-3 cells.
    references = {
        name: DbtSystem(program, policy=policy,
                        engine_config=_chaos_engine_config(chain),
                        interpreter=interpreter).run()
        for name, program, policy in guests
    }
    def _cell_telemetry(site: FaultSite, name: str):
        if telemetry is None:
            return None
        return telemetry.with_point("chaos/%s/%s" % (site.value, name),
                                    site=site.value, scenario=name)

    for site in ENGINE_SITES:
        cell_interp = ("compiled" if site is FaultSite.CODEGEN_CORRUPT
                       else interpreter)
        for name, program, policy in guests:
            outcomes.append(_engine_cell(site, seed, name, program, policy,
                                         references[name], chain=chain,
                                         interpreter=cell_interp,
                                         telemetry=_cell_telemetry(site, name)))

    if trace:
        for name, program, policy in guests:
            outcomes.append(_trace_guard_cell(
                seed, name, program, policy, references[name],
                telemetry=_cell_telemetry(FaultSite.TRACE_GUARD_CORRUPT,
                                          name)))
            outcomes.append(_queue_hang_cell(
                seed, name, program, policy, references[name],
                telemetry=_cell_telemetry(FaultSite.COMPILE_QUEUE_HANG,
                                          name)))

    workloads = [(kernel, guests[0][1])]
    baseline = _sweep_rows(workloads)
    scenario = "sweep:%s" % kernel
    work_path = (Path(work_dir) if work_dir is not None
                 else Path(tempfile.mkdtemp(prefix="repro-chaos-")))
    outcomes.append(_sweepcache_cell(seed, scenario, workloads, baseline,
                                     work_path, point_telemetry=telemetry))
    attack_name, attack_program, attack_policy = guests[1]
    outcomes.append(_tcache_disk_cell(
        seed, attack_name, attack_program, attack_policy, work_path, chain,
        telemetry=_cell_telemetry(FaultSite.TCACHE_DISK_CORRUPT,
                                  attack_name)))
    outcomes.append(_worker_cell(
        FaultSite.WORKER_CRASH, scenario, workloads, baseline,
        WorkerFault("crash"), jobs, timeout=None,
        point_telemetry=telemetry))
    outcomes.append(_worker_cell(
        FaultSite.WORKER_HANG, scenario, workloads, baseline,
        WorkerFault("hang", seconds=hang_timeout * 6), jobs,
        timeout=hang_timeout, point_telemetry=telemetry))

    if serve:
        serve_scenario = "serve:%s" % kernel
        for site in (FaultSite.SERVE_WORKER_CRASH,
                     FaultSite.SERVE_WORKER_HANG,
                     FaultSite.SERVE_LEASE_EXPIRE):
            outcomes.append(_serve_fault_cell(
                site, seed, serve_scenario, kernel, baseline, work_path,
                hang_timeout))
        outcomes.append(_serve_journal_cell(
            seed, serve_scenario, kernel, baseline, work_path))
    return outcomes
