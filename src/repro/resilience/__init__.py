"""Resilience layer: fault injection, supervised execution, chaos harness.

The paper's guarantee — every translated block went through the
mitigation pass the policy demands — is only as strong as the machinery
enforcing it.  This package makes that enforcement testable:

* :mod:`repro.resilience.faults` — a deterministic, seed-driven fault
  injector with named fault sites across the stack (translation-cache
  corruption/eviction, dropped scheduler constraints, fast-path lowering
  corruption, sweep-cache record corruption, worker crash/hang);
* :mod:`repro.resilience.supervisor` — the :class:`ExecutionSupervisor`
  that gates installs through the static legality verifier, quarantines
  anomalous blocks and walks them down a graceful-degradation ladder;
* :mod:`repro.resilience.chaos` — the ``repro chaos`` fault matrix:
  every site injected, detected, recovered, and the recovered run
  checked bit-identical (architectural state + attack bytes) against a
  fault-free reference.
"""

from .faults import (
    ENGINE_SITES,
    RUNNER_SITES,
    FaultInjector,
    FaultRecord,
    FaultSite,
)
from .supervisor import (
    ExecutionSupervisor,
    ResilienceError,
    SupervisorConfig,
    SupervisorStats,
)

__all__ = [
    "ENGINE_SITES",
    "RUNNER_SITES",
    "ExecutionSupervisor",
    "FaultInjector",
    "FaultRecord",
    "FaultSite",
    "ResilienceError",
    "SupervisorConfig",
    "SupervisorStats",
]
