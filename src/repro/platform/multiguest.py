"""Round-robin multi-guest execution over a shared translation pool.

:class:`MultiGuestHost` runs N independent guest systems inside one
process, interleaving their engine loops in fixed-size block quanta so
hot translations stay resident: guests of the same (program, policy,
config) class share first-pass and superblock translations — and
everything downstream of them (finalized fast-path tuples, compiled
code, megablocks) — through a :class:`~repro.dbt.pool.TranslationPool`
shard instead of re-deriving byte-identical artifacts per guest.

Everything architecturally visible stays strictly per guest (each
:class:`~repro.platform.system.DbtSystem` owns its registers, memory,
core timing state, profile and chain index), so every guest's
:class:`~repro.platform.metrics.SystemRunResult` is byte-identical to
the same guest run alone — the batched leg of
``tests/platform/test_fastpath_differential.py`` gates exactly that.

This is the execution backend behind ``repro sweep --batched`` and the
serve fleet's warm workers (one pool per worker process, reused across
jobs).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional

from ..dbt.pool import TranslationPool
from .metrics import SystemRunResult
from .system import DbtSystem

__all__ = ["MultiGuestHost", "DEFAULT_QUANTUM"]

#: Blocks each guest runs per turn.  Large enough that the round-robin
#: bookkeeping is noise, small enough that guests genuinely interleave
#: (so a shard's first guest quickly seeds translations the others hit).
DEFAULT_QUANTUM = 256


class MultiGuestHost:
    """Host N guest systems in one process over a shared pool."""

    def __init__(self, pool: Optional[TranslationPool] = None,
                 quantum: int = DEFAULT_QUANTUM) -> None:
        self.pool = TranslationPool() if pool is None else pool
        self.quantum = quantum
        self.systems: List[DbtSystem] = []

    def add_guest(self, program, **kwargs) -> DbtSystem:
        """Construct a guest against the shared pool; runs in
        :meth:`run_all`.  Accepts every :class:`DbtSystem` keyword."""
        system = DbtSystem(program, translation_pool=self.pool, **kwargs)
        self.systems.append(system)
        return system

    def run_all(
        self,
        on_exit: Optional[Callable[[int, SystemRunResult], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> List[Optional[SystemRunResult]]:
        """Run every guest to completion, round-robin.

        Results are indexed by ``add_guest`` order.  ``on_exit`` fires as
        each guest exits (checkpointing hook).  ``should_stop`` is polled
        between quanta; when it turns true the loop stops early and
        unfinished guests report ``None`` — callers treat those exactly
        like unstarted points (re-run on resume).  On any guest error the
        host shuts down every guest's tier machinery before re-raising,
        so no compile thread outlives the batch.
        """
        results: List[Optional[SystemRunResult]] = [None] * len(self.systems)
        active = deque(enumerate(self.systems))
        try:
            while active:
                if should_stop is not None and should_stop():
                    break
                index, system = active.popleft()
                if system.run_slice(self.quantum):
                    result = system.result()
                    if system.observer is not None:
                        system.observer.snapshot(result)
                    results[index] = result
                    if on_exit is not None:
                        on_exit(index, result)
                else:
                    active.append((index, system))
        finally:
            for system in self.systems:
                try:
                    system.finish_tiers()
                except Exception:
                    pass
        return results
