"""Round-robin multi-guest execution over a shared translation pool.

:class:`MultiGuestHost` runs N independent guest systems inside one
process, interleaving their engine loops in fixed-size block quanta so
hot translations stay resident: guests of the same (program, policy,
config) class share first-pass and superblock translations — and
everything downstream of them (finalized fast-path tuples, compiled
code, megablocks) — through a :class:`~repro.dbt.pool.TranslationPool`
shard instead of re-deriving byte-identical artifacts per guest.

``timing="vector"`` additionally stacks the co-resident guests' cache
timing state into numpy lanes (:mod:`repro.mem.vector`): guests sharing
a :class:`~repro.mem.cache.CacheConfig` geometry become lanes of one
:class:`~repro.mem.vector.LaneCacheModel`, their per-access accounting
defers into flat packed logs, and the quantum loop here drains every
lane through the vector engine between turns.  Observer- or
supervisor-gated guests fall back to the scalar model, mirroring the
pool-sharing gate.  Set ``REPRO_LANE_VERIFY=1`` to have every drain
re-derive its outcomes through the lockstep numpy replay and fail loud
on any divergence.

Everything architecturally visible stays strictly per guest (each
:class:`~repro.platform.system.DbtSystem` owns its registers, memory,
core timing state, profile and chain index), so every guest's
:class:`~repro.platform.metrics.SystemRunResult` is byte-identical to
the same guest run alone — the batched and lane-differential legs of
``tests/platform/test_fastpath_differential.py`` gate exactly that.

This is the execution backend behind ``repro sweep --batched`` and the
serve fleet's warm workers (one pool per worker process, reused across
jobs).
"""

from __future__ import annotations

import os
from collections import deque
from typing import Callable, List, Optional

from ..dbt.pool import TranslationPool
from ..mem.vector import LaneGroupRegistry
from .metrics import SystemRunResult
from .system import DbtSystem

__all__ = ["MultiGuestHost", "DEFAULT_QUANTUM", "TIMING_MODES"]

#: Blocks each guest runs per turn.  Large enough that the round-robin
#: bookkeeping is noise, small enough that guests genuinely interleave
#: (so a shard's first guest quickly seeds translations the others hit).
DEFAULT_QUANTUM = 256

#: Cache timing engines a host can run its guests on.
TIMING_MODES = ("scalar", "vector")


class MultiGuestHost:
    """Host N guest systems in one process over a shared pool."""

    def __init__(self, pool: Optional[TranslationPool] = None,
                 quantum: int = DEFAULT_QUANTUM,
                 timing: str = "scalar") -> None:
        if timing not in TIMING_MODES:
            raise ValueError("timing must be one of %s, got %r"
                             % ("/".join(TIMING_MODES), timing))
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.pool = TranslationPool() if pool is None else pool
        self.quantum = quantum
        self.timing = timing
        #: Lane groups for the vector engine (None on the scalar path,
        #: which keeps solo/batched-scalar byte-for-byte on seed code).
        self.lanes: Optional[LaneGroupRegistry] = None
        if timing == "vector":
            self.lanes = LaneGroupRegistry(
                verify=os.environ.get("REPRO_LANE_VERIFY", "") not in
                ("", "0"))
        self.systems: List[DbtSystem] = []

    def add_guest(self, program, **kwargs) -> DbtSystem:
        """Construct a guest against the shared pool; runs in
        :meth:`run_all`.  Accepts every :class:`DbtSystem` keyword."""
        system = DbtSystem(program, translation_pool=self.pool,
                           lane_registry=self.lanes, **kwargs)
        self.systems.append(system)
        return system

    def run_all(
        self,
        on_exit: Optional[Callable[[int, SystemRunResult], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> List[Optional[SystemRunResult]]:
        """Run every guest to completion, round-robin.

        Results are indexed by ``add_guest`` order.  ``on_exit`` fires as
        each guest exits (checkpointing hook).  ``should_stop`` is polled
        between quanta; when it turns true the loop stops early and
        unfinished guests report ``None`` — callers treat those exactly
        like unstarted points (re-run on resume).  On any guest error the
        host shuts down every guest's tier machinery before re-raising,
        so no compile thread outlives the batch.

        Under ``timing="vector"`` every lane's deferred access log is
        drained through the vector engine between turns (and once more
        on the way out), so stats stay one quantum fresh at most — and
        any read of a lane's ``stats`` forces its own drain anyway.
        """
        results: List[Optional[SystemRunResult]] = [None] * len(self.systems)
        active = deque(enumerate(self.systems))
        lanes = self.lanes
        try:
            while active:
                if should_stop is not None and should_stop():
                    break
                index, system = active.popleft()
                if system.run_slice(self.quantum):
                    result = system.result()
                    if system.observer is not None:
                        system.observer.snapshot(result)
                    results[index] = result
                    if on_exit is not None:
                        on_exit(index, result)
                else:
                    active.append((index, system))
                if lanes is not None:
                    lanes.drain_all()
        finally:
            for system in self.systems:
                try:
                    system.finish_tiers()
                except Exception:
                    pass
            if lanes is not None:
                lanes.drain_all()
                # Publish through the pool so long-lived callers (the
                # CLI's telemetry path, serve workers) see lane counters
                # accumulated across every batch the pool served.
                self.pool.merge_lane_counters(lanes.counters())
        return results
