"""The complete DBT-based processor platform.

:class:`DbtSystem` wires together a guest program, the DBT engine, the
VLIW core and the timed memory hierarchy, and runs guest programs to
completion: look up (or translate) the block at the current PC, execute
it on the core, feed the profile, service syscalls, repeat.

This is the object every attack, example and benchmark in the repository
drives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..interp.executor import SYSCALL_EXIT, SYSCALL_WRITE
from ..interp.state import to_signed
from ..isa.program import DEFAULT_STACK_TOP, Program
from ..mem.hierarchy import DataMemorySystem
from ..obs.observer import Observer
from ..security.policy import MitigationPolicy
from ..dbt.chaining import ChainedDispatcher
from ..dbt.engine import DbtEngine, DbtEngineConfig
from ..dbt.tiering import CompileQueue, TierController
from ..dbt.traces import TraceConfig, TraceManager
from ..dbt.translation_cache import PersistentCodegenCache
from ..vliw.codegen import CodegenStats, ensure_compiled
from ..vliw.config import VliwConfig
from ..vliw.fastpath import finalize_block
from ..vliw.pipeline import ExitReason, VliwCore
from .metrics import SystemRunResult

#: Register indices used by the syscall convention.
_REG_A0 = 10
_REG_A1 = 11
_REG_A2 = 12
_REG_A7 = 17
_REG_SP = 2


class PlatformError(Exception):
    """Raised on platform-level failures (budget exhausted, bad syscall)."""


class GuestBreakpoint(Exception):
    """Raised when the guest executes ``ebreak``."""


@dataclass
class PlatformConfig:
    """Run-level tunables."""

    stack_top: int = DEFAULT_STACK_TOP
    #: Abort runs that execute more than this many translated blocks.
    max_blocks: int = 5_000_000
    #: Abort runs that exceed this many cycles.
    max_cycles: int = 2_000_000_000


class DbtSystem:
    """A DBT-based processor running one guest program."""

    def __init__(
        self,
        program: Program,
        policy: MitigationPolicy = MitigationPolicy.UNSAFE,
        vliw_config: Optional[VliwConfig] = None,
        engine_config: Optional[DbtEngineConfig] = None,
        platform_config: Optional[PlatformConfig] = None,
        observer: Optional[Observer] = None,
        interpreter: Optional[str] = None,
        supervisor=None,
        tcache_dir=None,
        profiler=None,
        trace_config: Optional[TraceConfig] = None,
        compile_queue_mode: Optional[str] = None,
        translation_pool=None,
        lane_registry=None,
    ):
        self.program = program
        self.policy = policy
        self.vliw_config = vliw_config or VliwConfig()
        #: Optional :class:`~repro.dbt.pool.TranslationPool` shared with
        #: other guests in this process.  Sharing is enabled only for
        #: bare guests (no observer, no supervisor) — see
        #: ``DbtEngine._active_pool`` for why; a gated guest still
        #: counts toward ``dbt.pool.guests`` so the gate is visible.
        self.translation_pool = translation_pool
        pool_shard = None
        if translation_pool is not None:
            translation_pool.stats.guests += 1
            if observer is None and supervisor is None:
                pool_shard = translation_pool.shard(
                    program, policy, self.vliw_config, engine_config)
                # finalize_block memoizes per block on config *identity*
                # (``cached.config is config``); adopting the shard's
                # canonical — value-equal by key construction — instance
                # lets a shared block finalize once instead of once per
                # guest.
                self.vliw_config = pool_shard.vliw_config
        self.platform_config = platform_config or PlatformConfig()
        #: ``lane_registry`` (a :class:`~repro.mem.vector.LaneGroupRegistry`
        #: owned by the multi-guest host) gives this guest a lane of the
        #: vectorized timing engine instead of a private scalar cache.
        #: Gated exactly like pool sharing: observer- or supervisor-
        #: carrying guests keep the scalar model (their hooks observe
        #: per-access state that must not share accounting machinery),
        #: and the fallback is counted so the exclusion is visible in
        #: the ``mem.cache.lane.*`` counters.  Either way every
        #: observable is bit-identical — the lane-differential legs of
        #: the fastpath suite gate it.
        lane = None
        if lane_registry is not None:
            if observer is None and supervisor is None:
                lane = lane_registry.lane_for(self.vliw_config.cache)
            else:
                lane_registry.excluded += 1
        self.timing = "vector" if lane is not None else "scalar"
        self.memory = DataMemorySystem(cache_config=self.vliw_config.cache,
                                       cache=lane)
        for base, image in program.segments():
            self.memory.memory.load_image(base, image)
        self.core = VliwCore(self.vliw_config, self.memory)
        if interpreter is not None:
            if interpreter not in ("fast", "reference", "compiled",
                                   "trace"):
                raise ValueError(
                    "interpreter must be 'fast', 'reference', "
                    "'compiled' or 'trace', got %r" % (interpreter,))
            self.core.use_fast_path = interpreter != "reference"
            self.core.use_compiled = interpreter in ("compiled", "trace")
        #: The effective host tier ("trace" / "compiled" / "fast" /
        #: "reference").  "trace" is tier-3 plus megablock trace
        #: compilation on top (bit-identical simulated results).
        self.interpreter = ("trace" if interpreter == "trace"
                           else "compiled" if self.core.use_compiled
                           else "fast" if self.core.use_fast_path
                           else "reference")
        self.core.regs.write(_REG_SP, self.platform_config.stack_top)
        self.engine = DbtEngine(
            program,
            vliw_config=self.vliw_config,
            policy=policy,
            config=engine_config,
        )
        if pool_shard is not None:
            self.engine.pool = pool_shard
        #: Tier-3 codegen counters (None unless this system compiles).
        self.codegen: Optional[CodegenStats] = None
        #: Persistent cross-process codegen cache (``tcache_dir``).
        self.tcache: Optional[PersistentCodegenCache] = None
        #: Background compile queue; None keeps codegen fully inline.
        self.compile_queue: Optional[CompileQueue] = None
        #: Profile-driven tier placement (``tier_mode="auto"``).
        self.tier: Optional[TierController] = None
        #: Tier-4 trace manager (``interpreter="trace"`` with chaining).
        self.traces: Optional[TraceManager] = None
        tier_auto = self.engine.config.tier_mode == "auto"
        use_traces = (self.interpreter == "trace"
                      and self.engine.config.chain)
        if self.core.use_compiled:
            self.codegen = CodegenStats()
            self.core.codegen_stats = self.codegen
            if tcache_dir is not None:
                self.tcache = PersistentCodegenCache(tcache_dir)
                self.engine.cache.persistent = self.tcache
            if tier_auto or use_traces:
                # Traces under an eager tier compile synchronously (at
                # submit); automatic tiering compiles on a background
                # thread.  Either way results are applied only at safe
                # points, and compile *timing* can never change a
                # simulated observable — blocks simply execute on the
                # fast interpreter until the compiled form swaps in.
                mode = (compile_queue_mode
                        if compile_queue_mode is not None
                        else "thread" if tier_auto else "sync")
                self.compile_queue = CompileQueue(mode)
            stats = self.codegen
            persistent = self.tcache
            policy_key = policy.value
            vliw_config = self.vliw_config
            if tier_auto:
                # Profile-driven promotion: install only lowers to the
                # fast path; the controller compiles a block in the
                # background once its execution count shows the compile
                # will amortize.  Small kernels thus never pay codegen.
                self.tier = TierController(self, self.compile_queue)
                tier = self.tier

                def _finalize_and_note(block):
                    fblock = finalize_block(block, vliw_config)
                    if block.kind != "firstpass":
                        tier.note_install(block, fblock)
                    return fblock

                self.engine.cache.finalizer = _finalize_and_note
            else:
                # Compile at install time, through the same finalizer
                # hook the fast path uses for lowering.  Only optimized
                # (reoptimized) translations are compiled: first-pass
                # blocks are replaced after a handful of executions, so
                # their compile cost can never amortize — they run on
                # the fast interpreter instead, exactly like a real
                # DBT's tiering.  The recovery variant of a compiled
                # block is compiled eagerly so a rollback never pays a
                # compile hiccup mid-experiment.
                def _finalize_and_compile(block):
                    fblock = finalize_block(block, vliw_config)
                    if block.kind != "firstpass":
                        ensure_compiled(fblock, stats, persistent,
                                        policy_key)
                        if fblock.recovery is not None:
                            ensure_compiled(fblock.recovery, stats,
                                            persistent, policy_key)
                    return fblock

                self.engine.cache.finalizer = _finalize_and_compile
        elif not self.core.use_fast_path:
            # The finalized form is only consumed by the fast path;
            # skip the install-time lowering when this system never
            # executes it.  finalize_block still memoizes lazily should
            # the fast path be engaged later (e.g. by the supervisor's
            # degradation ladder toggling interpreters).
            self.engine.cache.finalizer = None
        #: Chained dispatcher (block→block dispatch); None keeps
        #: step_block on the exact seed code path.
        self.chain: Optional[ChainedDispatcher] = None
        if self.engine.config.chain:
            self.chain = ChainedDispatcher(self)
        if use_traces and self.chain is not None:
            self.traces = TraceManager(self, self.compile_queue,
                                       trace_config)
            self.chain.traces = self.traces
            self.engine.cache.traces = self.traces
        #: Optional observability sink, threaded through the core and the
        #: engine; None (the default) keeps every hook a single dead
        #: branch so instrumentation cannot perturb the timing model.
        self.observer = observer
        if observer is not None:
            observer.clock = lambda: self.core.cycle
            self.core.observer = observer
            self.engine.observer = observer
        #: Optional :class:`~repro.resilience.supervisor.ExecutionSupervisor`;
        #: None (the default) keeps step_block on the exact seed code path.
        self.supervisor = supervisor
        if supervisor is not None:
            supervisor.attach(self)
        self.pc = program.entry
        self.exited = False
        self.exit_code = 0
        self.output = bytearray()
        self.blocks_executed = 0
        #: Optional :class:`~repro.obs.profiler.HostProfiler`.  Attaches
        #: by wrapping host entry points as instance attributes, so the
        #: None (default) path adds zero branches to any hot loop.
        self.profiler = profiler
        if profiler is not None:
            profiler.attach(self)
        #: Latched by :meth:`finish_tiers` so the shutdown is idempotent
        #: (run()'s finally, run_slice's exit path and MultiGuestHost's
        #: cleanup may each reach it).
        self._tiers_finished = False

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def step_block(self) -> None:
        """Translate (if needed) and execute one block."""
        if self.exited:
            raise PlatformError("stepping an exited guest")
        block = self.engine.lookup(self.pc)
        if self.chain is not None:
            result = self.chain.dispatch(block)
        else:
            if self.supervisor is not None:
                result, block = self.supervisor.execute(self, block)
            else:
                result = self.core.execute_block(block)
            self.blocks_executed += 1
            self.engine.record_execution(block, result)
        if result.reason is ExitReason.SYSCALL:
            self._handle_syscall(result.next_pc)
        else:
            self.pc = result.next_pc

    def run_slice(self, max_blocks: int) -> bool:
        """Run up to ``max_blocks`` translated blocks; ``True`` once the
        guest has exited.

        The round-robin quantum primitive behind
        :class:`~repro.platform.multiguest.MultiGuestHost`: identical
        per-block budget checks and compile-queue safe points to
        :meth:`run`, but yielding after the quantum so other guests in
        the process can interleave.  The tier machinery is shut down as
        soon as this guest exits (or its slice aborts), so a host never
        carries compile threads for finished guests.
        """
        limits = self.platform_config
        queue = self.compile_queue
        tier = self.tier
        try:
            for _ in range(max_blocks):
                if self.exited:
                    break
                if self.blocks_executed >= limits.max_blocks:
                    raise PlatformError(
                        "block budget exhausted (%d) at pc %#x"
                        % (limits.max_blocks, self.pc)
                    )
                if self.core.cycle >= limits.max_cycles:
                    raise PlatformError(
                        "cycle budget exhausted (%d) at pc %#x"
                        % (limits.max_cycles, self.pc)
                    )
                self.step_block()
                if queue is not None:
                    # Safe point: no dispatch in flight, so finished
                    # background compiles may swap in now.
                    queue.drain()
                    if tier is not None:
                        tier.poll()
        except BaseException:
            self.finish_tiers()
            raise
        if self.exited:
            self.finish_tiers()
            return True
        return False

    def finish_tiers(self) -> None:
        """Flush and shut down the background compile machinery
        (idempotent)."""
        if self._tiers_finished:
            return
        self._tiers_finished = True
        if self.tier is not None:
            self.tier.finish()
        if self.compile_queue is not None:
            self.compile_queue.close()

    def run(self) -> SystemRunResult:
        """Run the guest to completion."""
        try:
            # One huge quantum: a single slice runs to exit (the block
            # budget is far below it), keeping run() on the same
            # per-block loop batched hosts use.
            while not self.run_slice(1 << 62):
                pass
        finally:
            self.finish_tiers()
        result = self.result()
        if self.observer is not None:
            self.observer.snapshot(result)
        return result

    def result(self) -> SystemRunResult:
        if self.codegen is not None and self.tcache is not None:
            self.codegen.quarantined = self.tcache.quarantined
        return SystemRunResult(
            exit_code=self.exit_code,
            cycles=self.core.cycle,
            instructions=self.core.instret,
            output=bytes(self.output),
            blocks_executed=self.blocks_executed,
            rollbacks=self.core.stats.rollbacks,
            core=self.core.stats,
            cache=self.memory.stats,
            engine=self.engine.stats,
            tcache=self.engine.cache.stats,
            chain=self.chain.stats if self.chain is not None else None,
            codegen=self.codegen,
            trace=self.traces.stats if self.traces is not None else None,
        )

    # ------------------------------------------------------------------
    # Syscalls.
    # ------------------------------------------------------------------

    def _handle_syscall(self, ecall_address: int) -> None:
        regs = self.core.regs
        # ebreak and ecall share the SYSCALL exit; disambiguate on the
        # guest word at the exit address.
        word = self.program.word_at(ecall_address) if self.program.contains_text(ecall_address) else 0
        if word == 0x00100073:
            raise GuestBreakpoint("ebreak at pc %#x" % ecall_address)
        number = regs.read(_REG_A7)
        if number == SYSCALL_EXIT:
            self.exited = True
            self.exit_code = to_signed(regs.read(_REG_A0), 32)
        elif number == SYSCALL_WRITE:
            address = regs.read(_REG_A1)
            length = regs.read(_REG_A2)
            self.output += self.memory.memory.load_bytes(address, length)
            regs.write(_REG_A0, length)
        else:
            raise PlatformError(
                "unknown syscall %d at pc %#x" % (number, ecall_address)
            )
        self.pc = ecall_address + 4

    # ------------------------------------------------------------------
    # Guest-memory convenience accessors (tests, attack harnesses).
    # ------------------------------------------------------------------

    def read_memory(self, address: int, size: int) -> bytes:
        return self.memory.memory.load_bytes(address, size)

    def write_memory(self, address: int, data: bytes) -> None:
        self.memory.memory.store_bytes(address, data)

    def read_symbol(self, name: str, size: int) -> bytes:
        return self.read_memory(self.program.symbol(name), size)


def run_on_platform(
    program: Program,
    policy: MitigationPolicy = MitigationPolicy.UNSAFE,
    vliw_config: Optional[VliwConfig] = None,
    engine_config: Optional[DbtEngineConfig] = None,
    observer: Optional[Observer] = None,
    interpreter: Optional[str] = None,
    supervisor=None,
    tcache_dir=None,
) -> SystemRunResult:
    """One-shot convenience: run ``program`` under ``policy``."""
    system = DbtSystem(
        program, policy=policy, vliw_config=vliw_config,
        engine_config=engine_config, observer=observer,
        interpreter=interpreter, supervisor=supervisor,
        tcache_dir=tcache_dir,
    )
    return system.run()
