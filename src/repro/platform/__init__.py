"""Whole-platform glue: guest program + DBT engine + VLIW core + cache."""

from .comparison import ascii_figure, compare_policies, slowdown_table
from .lockstep import Divergence, LockstepReport, lockstep_run
from .metrics import PolicyComparison, SystemRunResult
from .system import (
    DbtSystem,
    GuestBreakpoint,
    PlatformConfig,
    PlatformError,
    run_on_platform,
)

__all__ = [
    "DbtSystem",
    "Divergence",
    "LockstepReport",
    "GuestBreakpoint",
    "PlatformConfig",
    "PlatformError",
    "PolicyComparison",
    "ascii_figure",
    "SystemRunResult",
    "compare_policies",
    "lockstep_run",
    "run_on_platform",
    "slowdown_table",
]
