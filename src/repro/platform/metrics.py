"""Run metrics collected by the platform."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..dbt.chaining import ChainStats
from ..dbt.engine import DbtEngineStats
from ..dbt.traces import TraceStats
from ..dbt.translation_cache import TranslationCacheStats
from ..mem.cache import CacheStats
from ..vliw.codegen import CodegenStats
from ..vliw.pipeline import CoreStats


@dataclass
class SystemRunResult:
    """Outcome of running a guest program on the DBT platform."""

    exit_code: int
    cycles: int
    instructions: int
    output: bytes = b""
    blocks_executed: int = 0
    rollbacks: int = 0
    core: Optional[CoreStats] = None
    cache: Optional[CacheStats] = None
    engine: Optional[DbtEngineStats] = None
    tcache: Optional[TranslationCacheStats] = None
    chain: Optional[ChainStats] = None
    codegen: Optional[CodegenStats] = None
    trace: Optional[TraceStats] = None

    @property
    def ipc(self) -> float:
        """Retired guest instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def summary(self) -> str:
        lines = [
            "exit code      : %d" % self.exit_code,
            "cycles         : %d" % self.cycles,
            "guest instrs   : %d (IPC %.2f)" % (self.instructions, self.ipc),
            "blocks executed: %d" % self.blocks_executed,
            "MCB rollbacks  : %d" % self.rollbacks,
        ]
        if self.blocks_executed:
            lines.append(
                "per block      : %.1f guest instrs, %.1f cycles (IPC/block %.2f)"
                % (
                    self.instructions / self.blocks_executed,
                    self.cycles / self.blocks_executed,
                    self.ipc,
                )
            )
        if self.core is not None:
            lines.append(
                "core           : %d bundles, %d ops, %d stall cycles, %d exits taken"
                % (
                    self.core.bundles,
                    self.core.ops,
                    self.core.stall_cycles,
                    self.core.exits_taken,
                )
            )
        if self.engine is not None:
            lines.append(
                "DBT            : %d first-pass, %d optimized, %d patterns, %d spec loads"
                % (
                    self.engine.first_pass_translations,
                    self.engine.optimizations,
                    self.engine.spectre_patterns_detected,
                    self.engine.speculative_loads_emitted,
                )
            )
        if self.tcache is not None and (
                self.tcache.evictions or self.tcache.capacity_flushes):
            lines.append(
                "code cache     : %d installs, %d LRU evictions, %d flushes"
                % (self.tcache.installs, self.tcache.evictions,
                   self.tcache.capacity_flushes)
            )
        if self.codegen is not None:
            lines.append(
                "codegen        : %d compiles (%d bytes), %d memo hits, "
                "%d persist hits / %d stores"
                % (self.codegen.compiles, self.codegen.bytes,
                   self.codegen.hits, self.codegen.persist_hits,
                   self.codegen.persist_stores)
            )
        if self.chain is not None:
            breaks = ", ".join(
                "%s=%d" % (reason, count)
                for reason, count in sorted(self.chain.breaks.items()))
            lines.append(
                "chaining       : %d links, %d chained dispatches (breaks: %s)"
                % (self.chain.links, self.chain.dispatches, breaks or "none")
            )
        if self.trace is not None:
            exits = ", ".join(
                "%s=%d" % (kind, count)
                for kind, count in sorted(self.trace.guard_exits.items()))
            lines.append(
                "traces         : %d recorded, %d compiled, %d dispatches "
                "covering %d blocks, %d demotions (exits: %s; "
                "%.1f ms background compile)"
                % (self.trace.recorded, self.trace.compiled,
                   self.trace.dispatches, self.trace.blocks,
                   self.trace.demotions, exits or "none",
                   1e3 * self.trace.compile_seconds)
            )
        if self.cache is not None:
            lines.append(
                "D-cache        : %d hits / %d misses (%.1f%% hit rate)"
                % (self.cache.hits, self.cache.misses, 100.0 * self.cache.hit_rate)
            )
        return "\n".join(lines)


@dataclass
class PolicyComparison:
    """Cycle counts of one workload across mitigation policies."""

    workload: str
    results: Dict[str, SystemRunResult] = field(default_factory=dict)

    def slowdown(self, policy_label: str, baseline_label: str = "unsafe") -> float:
        """Execution-time ratio of ``policy_label`` over the baseline."""
        base = self.results[baseline_label].cycles
        return self.results[policy_label].cycles / base if base else float("inf")
