"""Multi-policy comparison runner.

Runs the same guest binary under several mitigation policies and reports
cycle counts and slowdowns versus the unsafe baseline — the measurement
harness behind Figure 4 and the Section V-B ablations.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, List, Optional, Sequence

from ..isa.program import Program
from ..security.policy import ALL_POLICIES, MitigationPolicy
from ..dbt.engine import DbtEngineConfig
from ..vliw.config import VliwConfig
from .metrics import PolicyComparison
from .system import DbtSystem


def compare_policies(
    name: str,
    program: Program,
    policies: Sequence[MitigationPolicy] = ALL_POLICIES,
    vliw_config: Optional[VliwConfig] = None,
    engine_config: Optional[DbtEngineConfig] = None,
    expect_exit_code: Optional[int] = None,
) -> PolicyComparison:
    """Run ``program`` once per policy and collect the results.

    Each run uses a fresh platform (fresh caches, fresh profile) so the
    policies are compared from identical cold starts.  When
    ``expect_exit_code`` is given, every run is checked against it —
    a cheap end-to-end correctness guard for the benchmarks.
    """
    comparison = PolicyComparison(workload=name)
    for policy in policies:
        system = DbtSystem(
            program,
            policy=policy,
            vliw_config=vliw_config,
            engine_config=engine_config,
        )
        result = system.run()
        if expect_exit_code is not None and result.exit_code != expect_exit_code:
            raise AssertionError(
                "%s under %s exited with %d (expected %d)"
                % (name, policy.value, result.exit_code, expect_exit_code)
            )
        comparison.results[policy.label] = result
    return comparison


def ascii_figure(
    comparisons: Iterable[PolicyComparison],
    policy: MitigationPolicy = MitigationPolicy.NO_SPECULATION,
    width: int = 50,
    ceiling: float = 2.0,
) -> str:
    """Render a Figure-4-style ASCII bar chart for one policy.

    Bars start at 100% (the unsafe baseline) and are scaled so that
    ``ceiling`` (default 200%) fills the full ``width``.
    """
    label = policy.label
    lines = ["slowdown of '%s' vs unsafe execution (|= 100%%)" % label, ""]
    for comparison in comparisons:
        ratio = comparison.slowdown(label)
        span = max(0.0, min(ratio - 1.0, ceiling - 1.0))
        bars = int(round(span / (ceiling - 1.0) * width))
        lines.append("%-24s |%-*s %6.1f%%" % (
            comparison.workload, width, "#" * bars, 100.0 * ratio,
        ))
    return "\n".join(lines)


def comparison_records(
    comparisons: Iterable[PolicyComparison],
    baseline_label: str = "unsafe",
) -> List[dict]:
    """Flatten comparisons into plain records (machine-readable sweeps).

    One record per (workload, policy) pair, carrying the headline run
    numbers plus the slowdown versus ``baseline_label``.
    """
    records: List[dict] = []
    for comparison in comparisons:
        for label, result in comparison.results.items():
            records.append({
                "workload": comparison.workload,
                "policy": label,
                "cycles": result.cycles,
                "instructions": result.instructions,
                "ipc": result.ipc,
                "blocks_executed": result.blocks_executed,
                "rollbacks": result.rollbacks,
                "exit_code": result.exit_code,
                "slowdown_vs_%s" % baseline_label:
                    comparison.slowdown(label, baseline_label),
            })
    return records


def comparison_json(
    comparisons: Iterable[PolicyComparison],
    baseline_label: str = "unsafe",
    indent: int = 2,
) -> str:
    """JSON document for ``repro sweep --json``."""
    return json.dumps(
        comparison_records(comparisons, baseline_label), indent=indent)


def comparison_csv(
    comparisons: Iterable[PolicyComparison],
    baseline_label: str = "unsafe",
) -> str:
    """CSV document for ``repro sweep --csv`` (header + one row per
    workload/policy pair)."""
    records = comparison_records(comparisons, baseline_label)
    fields = ["workload", "policy", "cycles", "instructions", "ipc",
              "blocks_executed", "rollbacks", "exit_code",
              "slowdown_vs_%s" % baseline_label]
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fields, lineterminator="\n")
    writer.writeheader()
    for record in records:
        writer.writerow(record)
    return buffer.getvalue()


def slowdown_table(
    comparisons: Iterable[PolicyComparison],
    policies: Sequence[MitigationPolicy] = (
        MitigationPolicy.GHOSTBUSTERS, MitigationPolicy.NO_SPECULATION,
    ),
) -> str:
    """Render Figure-4-style rows: per workload, slowdown vs unsafe."""
    labels = [policy.label for policy in policies]
    header = "%-24s" % "benchmark" + "".join("%20s" % label for label in labels)
    lines = [header, "-" * len(header)]
    sums = [0.0] * len(labels)
    count = 0
    for comparison in comparisons:
        row = "%-24s" % comparison.workload
        for position, label in enumerate(labels):
            ratio = comparison.slowdown(label)
            sums[position] += ratio
            row += "%19.1f%%" % (100.0 * ratio)
        lines.append(row)
        count += 1
    if count:
        row = "%-24s" % "geomean/avg"
        for position in range(len(labels)):
            row += "%19.1f%%" % (100.0 * sums[position] / count)
        lines.append(row)
    return "\n".join(lines)
