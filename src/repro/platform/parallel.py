"""Parallel experiment runner with on-disk sweep-point memoization.

Every point of the reproduction's experiment grids — one
(workload × policy × machine-config) simulation — is completely
independent of every other point: each run builds a fresh platform from
a picklable :class:`~repro.isa.program.Program` and pure-value configs.
That makes the grids embarrassingly parallel, and this module exploits
it twice over:

* ``sweep_comparisons`` fans the points of a Figure-4 style sweep out
  over a ``concurrent.futures.ProcessPoolExecutor`` (``jobs`` worker
  processes; ``jobs=1`` stays in-process with byte-identical results —
  the ordering test in ``tests/platform/test_parallel_sweep.py`` holds
  the two paths to the same rows);
* an optional **on-disk memo cache** keyed by ``(program container
  bytes, policy, VLIW config, engine config, interpreter)`` under
  ``benchmarks/results/cache/`` short-circuits points that were already
  simulated by an earlier run — re-running a sweep after editing one
  kernel only pays for that kernel.

Determinism contract: results are assembled strictly in submission
order (workloads outermost, policies innermost), never in completion
order, so ``--jobs N`` emits exactly the same JSON/CSV rows as a serial
sweep.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..dbt.engine import DbtEngineConfig
from ..isa.container import to_bytes as program_to_bytes
from ..isa.program import Program
from ..security.policy import ALL_POLICIES, MitigationPolicy
from ..vliw.config import VliwConfig
from .metrics import PolicyComparison, SystemRunResult
from .system import DbtSystem

#: Default memo-cache location (relative to the repository root when the
#: CLI runs from a checkout; callers may pass any directory).
DEFAULT_CACHE_DIR = Path("benchmarks") / "results" / "cache"

#: Bump when the cached record layout (or anything feeding the key)
#: changes; stale entries are then simply never looked up again.
_CACHE_VERSION = 1

#: Record fields persisted per sweep point.  ``ipc`` and slowdowns are
#: derived downstream, so caching the raw counters is enough to rebuild
#: byte-identical sweep rows.
_RECORD_FIELDS = ("exit_code", "cycles", "instructions",
                  "blocks_executed", "rollbacks")


# ---------------------------------------------------------------------------
# Memo-cache keys.
# ---------------------------------------------------------------------------

def config_fingerprint(vliw_config: Optional[VliwConfig],
                       engine_config: Optional[DbtEngineConfig]) -> str:
    """Stable textual fingerprint of the machine + engine configuration.

    ``repr`` is not usable here: slot capability sets are ``frozenset``s
    whose iteration order varies between interpreter runs.  Canonicalise
    everything order-sensitive instead.
    """
    vliw_config = vliw_config or VliwConfig()
    engine_config = engine_config or DbtEngineConfig()
    vliw_part = {
        "slots": [sorted(unit.value for unit in caps)
                  for caps in vliw_config.slots],
        "num_registers": vliw_config.num_registers,
        "latencies": sorted(
            (unit.value, latency)
            for unit, latency in vliw_config.latencies.items()),
        "exit_penalty": vliw_config.exit_penalty,
        "rollback_penalty": vliw_config.rollback_penalty,
        "mcb_entries": vliw_config.mcb_entries,
        "cache": asdict(vliw_config.cache),
    }
    engine_part = {
        "hot_threshold": engine_config.hot_threshold,
        "superblock": asdict(engine_config.superblock),
        "max_optimizations": engine_config.max_optimizations,
        "conflict_retranslate_threshold":
            engine_config.conflict_retranslate_threshold,
        "code_cache_capacity": engine_config.code_cache_capacity,
    }
    return json.dumps({"vliw": vliw_part, "engine": engine_part},
                      sort_keys=True)


def sweep_point_key(program: Program, policy: MitigationPolicy,
                    vliw_config: Optional[VliwConfig] = None,
                    engine_config: Optional[DbtEngineConfig] = None,
                    interpreter: str = "fast") -> str:
    """Content hash identifying one sweep point across runs."""
    digest = hashlib.sha256()
    digest.update(b"repro-sweep-point-v%d\n" % _CACHE_VERSION)
    digest.update(program_to_bytes(program))
    digest.update(policy.value.encode())
    digest.update(b"\n")
    digest.update(config_fingerprint(vliw_config, engine_config).encode())
    digest.update(interpreter.encode())
    return digest.hexdigest()


def _cache_load(cache_dir: Path, key: str) -> Optional[dict]:
    path = cache_dir / (key + ".json")
    try:
        with open(path) as handle:
            record = json.load(handle)
    except (OSError, ValueError):
        return None
    if not all(field in record for field in _RECORD_FIELDS):
        return None
    return record


def _cache_store(cache_dir: Path, key: str, record: dict) -> None:
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / (key + ".json")
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(record, sort_keys=True, indent=1) + "\n")
    tmp.replace(path)  # atomic: concurrent sweeps may share the cache


# ---------------------------------------------------------------------------
# Worker (runs in the pool processes; must stay module-level picklable).
# ---------------------------------------------------------------------------

def run_sweep_point(program: Program, policy: MitigationPolicy,
                    vliw_config: Optional[VliwConfig] = None,
                    engine_config: Optional[DbtEngineConfig] = None,
                    interpreter: Optional[str] = None) -> dict:
    """Simulate one (program, policy) point and return its slim record."""
    system = DbtSystem(program, policy=policy, vliw_config=vliw_config,
                       engine_config=engine_config, interpreter=interpreter)
    result = system.run()
    record = {field: getattr(result, field) for field in _RECORD_FIELDS}
    record["output"] = result.output.hex()
    return record


def _record_to_result(record: dict) -> SystemRunResult:
    return SystemRunResult(
        exit_code=record["exit_code"],
        cycles=record["cycles"],
        instructions=record["instructions"],
        output=bytes.fromhex(record.get("output", "")),
        blocks_executed=record["blocks_executed"],
        rollbacks=record["rollbacks"],
    )


# ---------------------------------------------------------------------------
# The parallel sweep.
# ---------------------------------------------------------------------------

def sweep_comparisons(
    workloads: Sequence[Tuple[str, Program]],
    policies: Sequence[MitigationPolicy] = ALL_POLICIES,
    jobs: int = 1,
    vliw_config: Optional[VliwConfig] = None,
    engine_config: Optional[DbtEngineConfig] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    expect_exit_codes: Optional[Dict[str, int]] = None,
    interpreter: Optional[str] = None,
) -> List[PolicyComparison]:
    """Run ``workloads`` × ``policies`` and return one
    :class:`PolicyComparison` per workload, in input order.

    ``jobs > 1`` distributes points over a process pool; ``cache_dir``
    (optional) memoizes points on disk keyed by
    :func:`sweep_point_key`.  Output ordering is independent of both.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    cache_path = Path(cache_dir) if cache_dir is not None else None
    interp_label = interpreter if interpreter is not None else "fast"

    points = [(name, program, policy)
              for name, program in workloads for policy in policies]
    records: List[Optional[dict]] = [None] * len(points)

    # Phase 1: satisfy what we can from the memo cache.
    misses: List[int] = []
    keys: List[Optional[str]] = [None] * len(points)
    for index, (name, program, policy) in enumerate(points):
        if cache_path is not None:
            key = sweep_point_key(program, policy, vliw_config,
                                  engine_config, interp_label)
            keys[index] = key
            records[index] = _cache_load(cache_path, key)
        if records[index] is None:
            misses.append(index)

    # Phase 2: simulate the misses — in a pool when jobs > 1, inline
    # otherwise.  ``executor.map`` yields in submission order, keeping
    # the records (and therefore every downstream row) deterministic.
    if misses:
        if jobs > 1:
            with ProcessPoolExecutor(max_workers=jobs) as executor:
                computed = list(executor.map(
                    run_sweep_point,
                    [points[i][1] for i in misses],
                    [points[i][2] for i in misses],
                    [vliw_config] * len(misses),
                    [engine_config] * len(misses),
                    [interpreter] * len(misses),
                ))
        else:
            computed = [
                run_sweep_point(points[i][1], points[i][2], vliw_config,
                                engine_config, interpreter)
                for i in misses
            ]
        for index, record in zip(misses, computed):
            records[index] = record
            if cache_path is not None and keys[index] is not None:
                _cache_store(cache_path, keys[index], record)

    # Phase 3: reassemble per-workload comparisons in input order.
    comparisons: List[PolicyComparison] = []
    by_name: Dict[str, PolicyComparison] = {}
    for (name, _program, policy), record in zip(points, records):
        comparison = by_name.get(name)
        if comparison is None:
            comparison = PolicyComparison(workload=name)
            by_name[name] = comparison
            comparisons.append(comparison)
        result = _record_to_result(record)
        expected = (expect_exit_codes or {}).get(name)
        if expected is not None and result.exit_code != expected:
            raise AssertionError(
                "%s under %s exited with %d (expected %d)"
                % (name, policy.value, result.exit_code, expected))
        comparison.results[policy.label] = result
    return comparisons
