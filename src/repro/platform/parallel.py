"""Hardened parallel experiment runner with on-disk memoization.

Every point of the reproduction's experiment grids — one
(workload × policy × machine-config) simulation — is completely
independent of every other point: each run builds a fresh platform from
a picklable :class:`~repro.isa.program.Program` and pure-value configs.
That makes the grids embarrassingly parallel, and this module exploits
it twice over:

* :func:`run_points` fans independent points out over a
  ``concurrent.futures.ProcessPoolExecutor`` (``jobs`` worker
  processes; ``jobs=1`` stays in-process with byte-identical results —
  the ordering test in ``tests/platform/test_parallel_sweep.py`` holds
  the two paths to the same rows);
* an optional **on-disk memo cache** keyed by ``(program container
  bytes, policy, VLIW config, engine config, interpreter)`` under
  ``benchmarks/results/cache/`` short-circuits points that were already
  simulated by an earlier run — re-running a sweep after editing one
  kernel only pays for that kernel.

The runner is hardened against the real failure modes of long sweeps
(``tests/platform/test_parallel_hardening.py`` injects every one):

* **worker crashes** (``BrokenProcessPool``) are detected, the pool is
  rebuilt, and the affected points retried with exponential backoff;
* **hung workers** are bounded by a per-point ``timeout``; on expiry the
  stuck processes are reaped and the points retried in a fresh pool;
* after the retry budget, surviving points are re-run **serially
  in-process** (no pool to break) before the runner gives up;
* points that still fail raise :class:`ParallelRunError` carrying a
  per-point failure table and the partial results — callers report the
  table and exit nonzero instead of dying on the first exception;
* memo-cache records carry a **sha256 checksum**; corrupt records are
  quarantined (moved to ``<cache>/quarantine/``) and recomputed;
* an optional JSONL **checkpoint** file makes sweeps resumable after a
  hard kill: finished points are appended as they complete and replayed
  on the next run.

Determinism contract: results are assembled strictly in submission
order (workloads outermost, policies innermost), never in completion
order, so ``--jobs N`` emits exactly the same JSON/CSV rows as a serial
sweep — crashes, retries and resumes included.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..dbt.engine import DbtEngineConfig
from ..ioatomic import atomic_write_text
from ..isa.container import to_bytes as program_to_bytes
from ..isa.program import Program
from ..obs.pipeline import TelemetryConfig, spool_envelope, worker_observer
from ..resilience.faults import WorkerFault, apply_worker_fault
from ..security.policy import ALL_POLICIES, MitigationPolicy
from ..vliw.config import VliwConfig
from .metrics import PolicyComparison, SystemRunResult
from .multiguest import DEFAULT_QUANTUM, MultiGuestHost
from .system import DbtSystem

#: Default memo-cache location (relative to the repository root when the
#: CLI runs from a checkout; callers may pass any directory).
DEFAULT_CACHE_DIR = Path("benchmarks") / "results" / "cache"

#: Bump when the cached record layout (or anything feeding the key)
#: changes; stale entries are then simply never looked up again.
#: v2: records are wrapped in a checksum envelope.
_CACHE_VERSION = 2

#: Record fields persisted per sweep point.  ``ipc`` and slowdowns are
#: derived downstream, so caching the raw counters is enough to rebuild
#: byte-identical sweep rows.
_RECORD_FIELDS = ("exit_code", "cycles", "instructions",
                  "blocks_executed", "rollbacks")

#: Subdirectory corrupt cache records are moved into for post-mortems.
_QUARANTINE_DIR = "quarantine"

#: Estimated cost of standing up a worker pool (process spawns, grid
#: pickling, warm-up imports).  The adaptive warm-start model in
#: :func:`run_points` only fans out when the projected parallel saving
#: exceeds this, so ``--jobs N`` on a small sweep degrades to the serial
#: path instead of paying pool spin-up it can never amortize.
POOL_SPINUP_SECONDS = 1.0


# ---------------------------------------------------------------------------
# Runner telemetry and failure reporting.
# ---------------------------------------------------------------------------

@dataclass
class RunnerTelemetry:
    """What the hardened runner had to do to get the results out."""

    attempts: int = 0
    crashes: int = 0
    timeouts: int = 0
    worker_errors: int = 0
    retries: int = 0
    pool_restarts: int = 0
    serial_fallbacks: int = 0
    checkpoint_hits: int = 0
    quarantined_cache_files: int = 0
    #: Points run in-process to calibrate the adaptive cost model.
    warm_start_points: int = 0
    #: Points kept in-process because the sweep was too small for a
    #: pool to pay for itself.
    adaptive_serial_points: int = 0

    @property
    def faults_survived(self) -> int:
        return (self.crashes + self.timeouts + self.worker_errors
                + self.quarantined_cache_files)

    def summary(self) -> str:
        return ("attempts=%d crashes=%d timeouts=%d worker_errors=%d "
                "retries=%d pool_restarts=%d serial_fallbacks=%d "
                "checkpoint_hits=%d quarantined=%d warm_start=%d "
                "adaptive_serial=%d"
                % (self.attempts, self.crashes, self.timeouts,
                   self.worker_errors, self.retries, self.pool_restarts,
                   self.serial_fallbacks, self.checkpoint_hits,
                   self.quarantined_cache_files, self.warm_start_points,
                   self.adaptive_serial_points))


@dataclass
class PointFailure:
    """Terminal failure of one grid point (after all retries)."""

    index: int
    label: str
    kind: str  # 'crash' | 'timeout' | 'error'
    error: str
    attempts: int


class DrainRequested(RuntimeError):
    """A graceful-drain signal (SIGTERM) arrived mid-run.

    Every point that was already in flight has been finished and handed
    to ``on_result`` (so checkpoints hold it); the points that had not
    started were left unstarted.  Callers report the drain and exit with
    :data:`DRAIN_EXIT_CODE` — re-running with the same ``--resume`` file
    picks up exactly where the drain stopped.
    """

    def __init__(self, completed: int, remaining: int):
        super().__init__("drained with %d point(s) done, %d not started"
                         % (completed, remaining))
        self.completed = completed
        self.remaining = remaining


#: Exit code the CLI pins for a SIGTERM-drained sweep (EX_TEMPFAIL:
#: nothing was lost; re-run with the same --resume file to finish).
DRAIN_EXIT_CODE = 75


class ParallelRunError(RuntimeError):
    """Some grid points failed after every retry.

    Carries the per-point :attr:`failures` for the CLI's failure table
    and the :attr:`partial` results (``None`` at failed indices) so a
    caller can still use what succeeded.
    """

    def __init__(self, message: str, failures: List[PointFailure],
                 partial: List[Optional[object]]):
        super().__init__(message)
        self.failures = failures
        self.partial = partial


def failure_table(failures: Sequence[PointFailure]) -> str:
    """Render terminal point failures as an aligned table."""
    width = max([len(f.label) for f in failures] + [len("point")])
    lines = ["%-*s  %-8s  %-8s  %s" % (width, "point", "kind",
                                       "attempts", "error")]
    lines.append("-" * len(lines[0]))
    for fail in failures:
        lines.append("%-*s  %-8s  %-8d  %s"
                     % (width, fail.label, fail.kind, fail.attempts,
                        fail.error))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Memo-cache keys and checksummed records.
# ---------------------------------------------------------------------------

def config_fingerprint(vliw_config: Optional[VliwConfig],
                       engine_config: Optional[DbtEngineConfig]) -> str:
    """Stable textual fingerprint of the machine + engine configuration.

    ``repr`` is not usable here: slot capability sets are ``frozenset``s
    whose iteration order varies between interpreter runs.  Canonicalise
    everything order-sensitive instead.
    """
    vliw_config = vliw_config or VliwConfig()
    engine_config = engine_config or DbtEngineConfig()
    vliw_part = {
        "slots": [sorted(unit.value for unit in caps)
                  for caps in vliw_config.slots],
        "num_registers": vliw_config.num_registers,
        "latencies": sorted(
            (unit.value, latency)
            for unit, latency in vliw_config.latencies.items()),
        "exit_penalty": vliw_config.exit_penalty,
        "rollback_penalty": vliw_config.rollback_penalty,
        "mcb_entries": vliw_config.mcb_entries,
        "cache": asdict(vliw_config.cache),
    }
    engine_part = {
        "hot_threshold": engine_config.hot_threshold,
        "superblock": asdict(engine_config.superblock),
        "max_optimizations": engine_config.max_optimizations,
        "conflict_retranslate_threshold":
            engine_config.conflict_retranslate_threshold,
        "code_cache_capacity": engine_config.code_cache_capacity,
        "code_cache_policy": engine_config.code_cache_policy,
        "chain": engine_config.chain,
        "tier_mode": engine_config.tier_mode,
    }
    return json.dumps({"vliw": vliw_part, "engine": engine_part},
                      sort_keys=True)


def sweep_point_key(program: Program, policy: MitigationPolicy,
                    vliw_config: Optional[VliwConfig] = None,
                    engine_config: Optional[DbtEngineConfig] = None,
                    interpreter: str = "fast") -> str:
    """Content hash identifying one sweep point across runs."""
    digest = hashlib.sha256()
    digest.update(b"repro-sweep-point-v%d\n" % _CACHE_VERSION)
    digest.update(program_to_bytes(program))
    digest.update(policy.value.encode())
    digest.update(b"\n")
    digest.update(config_fingerprint(vliw_config, engine_config).encode())
    digest.update(interpreter.encode())
    return digest.hexdigest()


def _record_checksum(record: dict) -> str:
    return hashlib.sha256(
        json.dumps(record, sort_keys=True).encode()).hexdigest()


def _quarantine(cache_dir: Path, path: Path) -> None:
    """Move a corrupt cache record aside (delete if even that fails)."""
    try:
        target_dir = cache_dir / _QUARANTINE_DIR
        target_dir.mkdir(parents=True, exist_ok=True)
        path.replace(target_dir / path.name)
    except OSError:
        try:
            path.unlink()
        except OSError:
            pass


def _cache_load(cache_dir: Path, key: str,
                telemetry: Optional[RunnerTelemetry] = None) -> Optional[dict]:
    """Load one checksummed record; quarantine anything that fails
    parsing, the field check, or checksum verification."""
    path = cache_dir / (key + ".json")
    try:
        with open(path) as handle:
            envelope = json.load(handle)
    except OSError:
        return None
    except ValueError:
        _quarantine(cache_dir, path)
        if telemetry is not None:
            telemetry.quarantined_cache_files += 1
        return None
    record = envelope.get("record") if isinstance(envelope, dict) else None
    if (
        not isinstance(record, dict)
        or not all(field_ in record for field_ in _RECORD_FIELDS)
        or envelope.get("sha256") != _record_checksum(record)
    ):
        _quarantine(cache_dir, path)
        if telemetry is not None:
            telemetry.quarantined_cache_files += 1
        return None
    return record


def _cache_store(cache_dir: Path, key: str, record: dict) -> None:
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / (key + ".json")
    envelope = {"record": record, "sha256": _record_checksum(record),
                "version": _CACHE_VERSION}
    # Unique temp + fsync + os.replace: concurrent sweeps share the
    # cache, and a fixed temp name would let two writers interleave
    # into one file and publish a torn envelope.
    atomic_write_text(path,
                      json.dumps(envelope, sort_keys=True, indent=1) + "\n")


# ---------------------------------------------------------------------------
# Resumable checkpoints (JSONL; tolerant of a torn final line).
# ---------------------------------------------------------------------------

def compact_jsonl(path: Union[str, Path], records: Sequence[dict]) -> None:
    """Atomically rewrite a JSONL file as one line per record.

    The shared compaction primitive: sweep checkpoints rewrite
    themselves to the last record per point, and the serve daemon's job
    journal rewrites itself to one state snapshot per job.  The rewrite
    goes through a temp file + ``os.replace`` so a kill mid-compaction
    leaves either the old file or the new one, never a torn mix.
    """
    path = Path(path)
    # The temp name must be writer-unique: two resumed sweeps sharing a
    # --resume path (or the daemon restarting mid-compaction) would
    # otherwise interleave into one ".compact" file and rename a torn
    # mix into place.
    atomic_write_text(
        path,
        "".join(json.dumps(record, sort_keys=True) + "\n"
                for record in records))


def checkpoint_load(path: Union[str, Path],
                    compact: bool = True) -> Dict[str, dict]:
    """Load a sweep checkpoint: ``key -> record`` for every completed
    point.  Partial (killed-mid-write) lines are ignored.

    Checkpoints are append-only, so a point that was re-simulated across
    retried runs (config drift, a run killed mid-append, a shared
    checkpoint file) appears once per completion and the file grows
    without bound.  ``compact`` (the default) rewrites the file down to
    the surviving last-record-per-point set whenever loading dropped
    anything — torn lines included — via :func:`compact_jsonl`.
    """
    records: Dict[str, dict] = {}
    lines = 0
    try:
        with open(path) as handle:
            for line in handle:
                if not line.strip():
                    continue
                lines += 1
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # torn tail of a killed run
                if (isinstance(entry, dict)
                        and isinstance(entry.get("key"), str)
                        and isinstance(entry.get("record"), dict)
                        and all(field_ in entry["record"]
                                for field_ in _RECORD_FIELDS)):
                    records[entry["key"]] = entry["record"]
    except OSError:
        return {}
    if compact and lines > len(records):
        compact_jsonl(path, [{"key": key, "record": record}
                             for key, record in records.items()])
    return records


def checkpoint_append(path: Union[str, Path], key: str, record: dict) -> None:
    """Append one completed point to the checkpoint (flushed per line so
    a kill loses at most the line being written)."""
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(json.dumps({"key": key, "record": record},
                                sort_keys=True) + "\n")
        handle.flush()


# ---------------------------------------------------------------------------
# Workers (run in the pool processes; must stay module-level picklable).
# ---------------------------------------------------------------------------

def run_sweep_point(program: Program, policy: MitigationPolicy,
                    vliw_config: Optional[VliwConfig] = None,
                    engine_config: Optional[DbtEngineConfig] = None,
                    interpreter: Optional[str] = None,
                    tcache_dir=None,
                    telemetry: Optional[TelemetryConfig] = None,
                    fault: Optional[WorkerFault] = None,
                    pool=None) -> dict:
    """Simulate one (program, policy) point and return its slim record.

    ``telemetry`` (optional) attaches a fresh observer and appends one
    envelope to the spool after the run — bit-identical results either
    way (the no-Heisenberg gate), so records and memo-cache keys are
    unaffected.

    ``pool`` (keyword-only in practice: ``fault`` is the last positional
    the process-pool path fills) is an optional
    :class:`~repro.dbt.pool.TranslationPool` so in-process callers — the
    serve fleet's warm workers — keep translations resident across
    points; results are byte-identical with or without it.
    """
    apply_worker_fault(fault)
    observer = worker_observer(telemetry)
    system = DbtSystem(program, policy=policy, vliw_config=vliw_config,
                       engine_config=engine_config, interpreter=interpreter,
                       tcache_dir=tcache_dir, observer=observer,
                       translation_pool=pool)
    result = system.run()
    spool_envelope(telemetry, observer)
    record = {field_: getattr(result, field_) for field_ in _RECORD_FIELDS}
    record["output"] = result.output.hex()
    return record


def run_batched_points(tasks: Sequence[Tuple[Program, MitigationPolicy]],
                       vliw_config: Optional[VliwConfig] = None,
                       engine_config: Optional[DbtEngineConfig] = None,
                       interpreter: Optional[str] = None,
                       tcache_dir=None,
                       point_telemetry: Optional[Sequence[
                           Optional[TelemetryConfig]]] = None,
                       pool=None,
                       on_result: Optional[Callable[[int, dict],
                                                    None]] = None,
                       should_drain: Optional[Callable[[], bool]] = None,
                       timing: str = "scalar",
                       quantum: Optional[int] = None,
                       ) -> List[Optional[dict]]:
    """Run (program, policy) points as co-hosted guests of one
    :class:`~repro.platform.multiguest.MultiGuestHost`.

    The batched counterpart of fanning :func:`run_sweep_point` out over
    a process pool: guests of the same (program, policy, config) share
    ``pool`` (one is created per batch when ``None``), and records are
    returned in task order, byte-identical to the per-process path.
    ``on_result`` fires per point as its guest exits (checkpointing).
    When ``should_drain`` turns true mid-batch, unfinished guests are
    abandoned like unstarted points and report ``None``.

    ``timing="vector"`` runs the guests' cache timing on the lane-
    batched numpy engine (bit-identical records — memo-cache keys are
    deliberately shared across timing modes); ``quantum`` overrides the
    round-robin block quantum, which can only change interleaving,
    never results (pinned by the multiguest suite).
    """
    host = MultiGuestHost(pool=pool, timing=timing,
                          quantum=(DEFAULT_QUANTUM if quantum is None
                                   else quantum))
    cells = (list(point_telemetry) if point_telemetry is not None
             else [None] * len(tasks))
    observers = []
    for (program, policy), cell in zip(tasks, cells):
        observer = worker_observer(cell)
        host.add_guest(program, policy=policy, vliw_config=vliw_config,
                       engine_config=engine_config, interpreter=interpreter,
                       tcache_dir=tcache_dir, observer=observer)
        observers.append(observer)
    records: List[Optional[dict]] = [None] * len(tasks)

    def _on_exit(index: int, result: SystemRunResult) -> None:
        spool_envelope(cells[index], observers[index])
        record = {field_: getattr(result, field_)
                  for field_ in _RECORD_FIELDS}
        record["output"] = result.output.hex()
        records[index] = record
        if on_result is not None:
            on_result(index, record)

    host.run_all(on_exit=_on_exit, should_stop=should_drain)
    return records


def _record_to_result(record: dict) -> SystemRunResult:
    return SystemRunResult(
        exit_code=record["exit_code"],
        cycles=record["cycles"],
        instructions=record["instructions"],
        output=bytes.fromhex(record.get("output", "")),
        blocks_executed=record["blocks_executed"],
        rollbacks=record["rollbacks"],
    )


# ---------------------------------------------------------------------------
# The hardened fan-out core.
# ---------------------------------------------------------------------------

def _reap(executor: ProcessPoolExecutor) -> None:
    """Terminate a pool whose workers can no longer be trusted (hung or
    crashed); the points it still owed are retried in a fresh pool."""
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except OSError:
            pass
    executor.shutdown(wait=False, cancel_futures=True)


def run_points(
    worker: Callable[..., object],
    tasks: Sequence[Tuple],
    labels: Optional[Sequence[str]] = None,
    jobs: int = 1,
    timeout: Optional[float] = None,
    retries: int = 2,
    backoff: float = 0.5,
    telemetry: Optional[RunnerTelemetry] = None,
    worker_faults: Optional[Dict[int, WorkerFault]] = None,
    serial_fallback: bool = True,
    on_result: Optional[Callable[[int, object], None]] = None,
    adaptive: bool = True,
    should_drain: Optional[Callable[[], bool]] = None,
) -> List[object]:
    """Run ``worker(*task, fault)`` for every task, hardened.

    Results come back in task order regardless of ``jobs``, retries or
    fallbacks.  ``worker`` must accept a trailing
    :class:`~repro.resilience.faults.WorkerFault` argument (``None``
    outside chaos runs); ``worker_faults`` maps task index → fault and
    is only applied on the *first pool attempt* — retries and the serial
    fallback always run fault-free, which is what lets the runner heal.

    * ``timeout`` bounds each point (pool mode only); expiry reaps the
      pool and retries the point.
    * ``retries`` pool attempts are separated by exponential ``backoff``.
    * With ``serial_fallback``, points still failing after the last pool
      attempt run once more in-process.
    * Any point that still has no result raises :class:`ParallelRunError`
      with the failure table and partial results.

    ``on_result(index, result)`` fires as each point completes (in
    completion order) — the checkpoint/memo hook.

    ``adaptive=False`` disables the warm-start cost model, so
    ``jobs > 1`` always stands up a pool even when the sweep is too
    small to amortize it — for callers that need real workers (e.g.
    exercising the multi-process telemetry merge).

    ``should_drain`` (optional, polled between point completions) turns
    a graceful-shutdown signal into :class:`DrainRequested`: points in
    flight are finished and reported through ``on_result``, unstarted
    points are abandoned cleanly.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if telemetry is None:
        telemetry = RunnerTelemetry()
    if labels is None:
        labels = ["point %d" % index for index in range(len(tasks))]

    results: List[Optional[object]] = [None] * len(tasks)
    done: List[bool] = [False] * len(tasks)
    failures: Dict[int, PointFailure] = {}
    attempts: Dict[int, int] = {index: 0 for index in range(len(tasks))}
    pending = set(range(len(tasks)))

    def _complete(index: int, result: object) -> None:
        results[index] = result
        done[index] = True
        pending.discard(index)
        failures.pop(index, None)
        if on_result is not None:
            on_result(index, result)

    def _failed(index: int, kind: str, error: str) -> None:
        if kind == "crash":
            telemetry.crashes += 1
        elif kind == "timeout":
            telemetry.timeouts += 1
        else:
            telemetry.worker_errors += 1
        failures[index] = PointFailure(index, labels[index], kind,
                                       error, attempts[index])

    def _drain_check() -> None:
        if should_drain is not None and should_drain():
            raise DrainRequested(sum(done), len(pending))

    def _serial_pass(indices: Sequence[int]) -> None:
        # In-process: never apply worker faults (a crash fault would
        # take the parent down) and no timeout enforcement.
        for index in indices:
            _drain_check()
            attempts[index] += 1
            telemetry.attempts += 1
            try:
                _complete(index, worker(*tasks[index], None))
            except Exception as error:  # noqa: BLE001 — reported per point
                _failed(index, "error", "%s: %s"
                        % (type(error).__name__, error))

    def _pool_pass(indices: Sequence[int], apply_faults: bool) -> None:
        executor = ProcessPoolExecutor(max_workers=jobs)
        abandoned = False
        try:
            futures = {}
            for index in indices:
                fault = (worker_faults or {}).get(index) if apply_faults else None
                attempts[index] += 1
                telemetry.attempts += 1
                futures[index] = executor.submit(worker, *tasks[index], fault)
            for position, index in enumerate(indices):
                if should_drain is not None and should_drain():
                    # Graceful drain: stop starting work, finish what is
                    # already running so nothing computed is lost.
                    for rest in indices[position:]:
                        futures[rest].cancel()
                    for rest in indices[position:]:
                        future = futures[rest]
                        if future.cancelled():
                            continue
                        try:
                            _complete(rest, future.result())
                        except Exception as error:  # noqa: BLE001
                            _failed(rest, "error", "%s: %s"
                                    % (type(error).__name__, error))
                    raise DrainRequested(sum(done), len(pending))
                try:
                    _complete(index, futures[index].result(timeout=timeout))
                except FuturesTimeoutError:
                    _failed(index, "timeout",
                            "no result within %gs" % (timeout or 0.0))
                    abandoned = True
                    return  # pool is reaped; survivors retry fresh
                except BrokenProcessPool as error:
                    _failed(index, "crash",
                            str(error) or "worker process died")
                    abandoned = True
                    return
                except Exception as error:  # noqa: BLE001 — per point
                    _failed(index, "error", "%s: %s"
                            % (type(error).__name__, error))
        finally:
            if abandoned:
                _reap(executor)
            else:
                executor.shutdown(wait=True)

    if jobs == 1:
        # Serial mode is the seed code path: exceptions propagate
        # directly.  Deterministic in-process failures don't heal on
        # retry, and callers (tests included) rely on seeing the
        # original exception rather than a wrapped failure table.
        for index in range(len(tasks)):
            _drain_check()
            attempts[index] += 1
            telemetry.attempts += 1
            _complete(index, worker(*tasks[index], None))
        return results
    else:
        # Adaptive warm-start cost model: a pool costs real wall time to
        # stand up (process spawns, pickling, imports), which small
        # sweeps can never amortize — measured regressions showed
        # ``--jobs 4`` losing to serial on the small figure-4 grid.  Run
        # the first point in-process to calibrate the per-point cost,
        # then fan out only when the projected parallel saving over the
        # remaining points beats the spin-up cost.  Only safe without
        # injected faults (serial never applies them) and without a
        # timeout (serial cannot enforce one).
        if adaptive and pending and worker_faults is None and timeout is None:
            first = min(pending)
            start = time.perf_counter()
            _serial_pass([first])
            per_point = time.perf_counter() - start
            telemetry.warm_start_points += 1
            remaining = len(pending)
            projected_saving = per_point * remaining * (jobs - 1) / jobs
            if projected_saving <= POOL_SPINUP_SECONDS:
                telemetry.adaptive_serial_points += remaining
                _serial_pass(sorted(pending))
        for attempt in range(retries + 1):
            if not pending:
                break
            if attempt:
                telemetry.retries += 1
                telemetry.pool_restarts += 1
                time.sleep(backoff * (2 ** (attempt - 1)))
            _pool_pass(sorted(pending), apply_faults=(attempt == 0))
        if pending and serial_fallback:
            telemetry.serial_fallbacks += 1
            _serial_pass(sorted(pending))

    if pending:
        terminal = [
            failures.get(index) or PointFailure(
                index, labels[index], "crash",
                "abandoned when the worker pool died", attempts[index])
            for index in sorted(pending)
        ]
        raise ParallelRunError(
            "%d of %d points failed after %d pool attempt(s)%s"
            % (len(terminal), len(tasks), retries + 1,
               " + serial fallback" if serial_fallback and jobs > 1 else ""),
            terminal,
            [results[i] if done[i] else None for i in range(len(tasks))],
        )
    return results


# ---------------------------------------------------------------------------
# The parallel sweep.
# ---------------------------------------------------------------------------

def sweep_comparisons(
    workloads: Sequence[Tuple[str, Program]],
    policies: Sequence[MitigationPolicy] = ALL_POLICIES,
    jobs: int = 1,
    vliw_config: Optional[VliwConfig] = None,
    engine_config: Optional[DbtEngineConfig] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    expect_exit_codes: Optional[Dict[str, int]] = None,
    interpreter: Optional[str] = None,
    timeout: Optional[float] = None,
    retries: int = 2,
    backoff: float = 0.5,
    checkpoint: Optional[Union[str, Path]] = None,
    telemetry: Optional[RunnerTelemetry] = None,
    worker_faults: Optional[Dict[int, WorkerFault]] = None,
    tcache_dir=None,
    point_telemetry: Optional[TelemetryConfig] = None,
    adaptive: bool = True,
    should_drain: Optional[Callable[[], bool]] = None,
    batched: bool = False,
    pool=None,
    timing: str = "scalar",
    quantum: Optional[int] = None,
) -> List[PolicyComparison]:
    """Run ``workloads`` × ``policies`` and return one
    :class:`PolicyComparison` per workload, in input order.

    ``jobs > 1`` distributes points over a hardened process pool (see
    :func:`run_points` for ``timeout``/``retries``/``backoff`` and the
    failure contract); ``cache_dir`` (optional) memoizes points on disk
    keyed by :func:`sweep_point_key`; ``checkpoint`` (optional) makes
    the sweep resumable after a hard kill.  Output ordering is
    independent of all of them.

    ``worker_faults`` (chaos runs only) maps the index of a *simulated*
    point — cache/checkpoint hits don't count — to the
    :class:`~repro.resilience.faults.WorkerFault` its worker applies to
    itself on the first pool attempt.

    ``point_telemetry`` (a :class:`~repro.obs.pipeline.TelemetryConfig`
    template) makes every *simulated* point spool a telemetry envelope;
    cache/checkpoint hits skip the simulation and therefore spool
    nothing — run with a cold cache when every point must be accounted.

    ``adaptive=False`` forces a real pool for ``jobs > 1`` even when
    the adaptive cost model would keep a small sweep in-process.

    ``should_drain`` makes the sweep SIGTERM-drainable: when it turns
    true, in-flight points finish (and checkpoint), unstarted points are
    abandoned, and :class:`DrainRequested` propagates to the caller.

    ``batched=True`` runs the misses as co-hosted guests of one
    :class:`~repro.platform.multiguest.MultiGuestHost` sharing ``pool``
    (one is created per call when ``None``) instead of fanning them over
    a process pool — byte-identical rows, but guests of the same policy
    class reuse each other's translations.  ``jobs``/``timeout``/
    ``retries``/``worker_faults`` only shape the process-pool path and
    are ignored when batched; a drain mid-batch abandons *unfinished*
    guests (they re-run on ``--resume``) rather than finishing in-flight
    ones, since every guest is in flight at once.

    ``timing``/``quantum`` shape only the batched path (see
    :func:`run_batched_points`): ``timing="vector"`` batches the
    co-hosted guests' cache timing into numpy lanes, ``quantum`` sets
    the round-robin block quantum.  Rows are bit-identical either way,
    so memo-cache and checkpoint keys deliberately ignore both.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if telemetry is None:
        telemetry = RunnerTelemetry()
    cache_path = Path(cache_dir) if cache_dir is not None else None
    interp_label = interpreter if interpreter is not None else "fast"

    points = [(name, program, policy)
              for name, program in workloads for policy in policies]
    records: List[Optional[dict]] = [None] * len(points)

    # Phase 1: satisfy what we can from the checkpoint and memo cache.
    resumed = checkpoint_load(checkpoint) if checkpoint is not None else {}
    misses: List[int] = []
    keys: List[Optional[str]] = [None] * len(points)
    for index, (name, program, policy) in enumerate(points):
        if cache_path is not None or checkpoint is not None:
            key = sweep_point_key(program, policy, vliw_config,
                                  engine_config, interp_label)
            keys[index] = key
            if key in resumed:
                records[index] = resumed[key]
                telemetry.checkpoint_hits += 1
            elif cache_path is not None:
                records[index] = _cache_load(cache_path, key, telemetry)
        if records[index] is None:
            misses.append(index)

    # Phase 2: simulate the misses through the hardened runner.  Records
    # are persisted as each point lands, so a killed sweep resumes from
    # its checkpoint instead of starting over.
    if misses:
        def _persist(miss_position: int, record: dict) -> None:
            index = misses[miss_position]
            if keys[index] is not None:
                if cache_path is not None:
                    _cache_store(cache_path, keys[index], record)
                if checkpoint is not None:
                    checkpoint_append(checkpoint, keys[index], record)

        def _point_telemetry(index: int) -> Optional[TelemetryConfig]:
            if point_telemetry is None:
                return None
            name, _program, policy = points[index]
            return point_telemetry.with_point(
                "%s/%s" % (name, policy.value), workload=name,
                policy=policy.value, interpreter=interp_label)

        if batched:
            computed = run_batched_points(
                [(points[i][1], points[i][2]) for i in misses],
                vliw_config=vliw_config,
                engine_config=engine_config,
                interpreter=interpreter,
                tcache_dir=tcache_dir,
                point_telemetry=[_point_telemetry(i) for i in misses],
                pool=pool,
                on_result=_persist,
                should_drain=should_drain,
                timing=timing,
                quantum=quantum,
            )
            done = sum(1 for record in computed if record is not None)
            if done < len(misses):
                raise DrainRequested(
                    completed=len(points) - len(misses) + done,
                    remaining=len(misses) - done)
            for index, record in zip(misses, computed):
                records[index] = record
            misses = []
    if misses:
        try:
            computed = run_points(
                run_sweep_point,
                [(points[i][1], points[i][2], vliw_config, engine_config,
                  interpreter, tcache_dir, _point_telemetry(i))
                 for i in misses],
                labels=["%s/%s" % (points[i][0], points[i][2].value)
                        for i in misses],
                jobs=jobs,
                timeout=timeout,
                retries=retries,
                backoff=backoff,
                telemetry=telemetry,
                worker_faults=worker_faults,
                on_result=_persist,
                adaptive=adaptive,
                should_drain=should_drain,
            )
        except ParallelRunError as error:
            raise ParallelRunError(
                "sweep: %s" % error, error.failures, error.partial,
            ) from None
        for index, record in zip(misses, computed):
            records[index] = record

    # Phase 3: reassemble per-workload comparisons in input order.
    comparisons: List[PolicyComparison] = []
    by_name: Dict[str, PolicyComparison] = {}
    for (name, _program, policy), record in zip(points, records):
        comparison = by_name.get(name)
        if comparison is None:
            comparison = PolicyComparison(workload=name)
            by_name[name] = comparison
            comparisons.append(comparison)
        result = _record_to_result(record)
        expected = (expect_exit_codes or {}).get(name)
        if expected is not None and result.exit_code != expected:
            raise AssertionError(
                "%s under %s exited with %d (expected %d)"
                % (name, policy.value, result.exit_code, expected))
        comparison.results[policy.label] = result
    return comparisons
