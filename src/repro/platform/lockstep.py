"""Lockstep differential execution: DBT platform vs reference interpreter.

Runs the same guest program on both engines, synchronising at every
translated-block boundary: the platform executes one block (retiring N
guest instructions), the interpreter steps exactly N instructions, and
the architectural states are compared.  The first divergence is reported
with full context — the debugging tool you want when changing the
scheduler.

A ``fault_injector`` hook can corrupt the platform state between blocks;
the test suite uses it to prove the checker actually catches register,
memory and control-flow divergences (failure injection).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..interp.executor import Interpreter
from ..isa.program import Program
from ..isa.registers import register_name
from ..security.policy import MitigationPolicy
from ..vliw.config import VliwConfig
from ..dbt.engine import DbtEngineConfig
from .system import DbtSystem


@dataclass
class Divergence:
    """First detected mismatch between the two executions."""

    block_index: int
    pc: int
    kind: str  # 'pc', 'registers', 'memory', 'exit-code', 'output'
    details: List[str] = field(default_factory=list)

    def describe(self) -> str:
        head = "divergence after block %d (guest pc %#x): %s" % (
            self.block_index, self.pc, self.kind,
        )
        return "\n".join([head] + ["  " + line for line in self.details])


@dataclass
class LockstepReport:
    """Outcome of a lockstep run."""

    blocks_executed: int
    divergence: Optional[Divergence] = None

    @property
    def ok(self) -> bool:
        return self.divergence is None


def lockstep_run(
    program: Program,
    policy: MitigationPolicy = MitigationPolicy.UNSAFE,
    vliw_config: Optional[VliwConfig] = None,
    engine_config: Optional[DbtEngineConfig] = None,
    max_blocks: int = 200_000,
    memory_check_interval: int = 64,
    fault_injector: Optional[Callable[[DbtSystem, int], None]] = None,
    supervisor=None,
) -> LockstepReport:
    """Run ``program`` in lockstep; stop at the first divergence.

    ``memory_check_interval`` bounds the cost of full-memory comparison:
    registers are compared at every block boundary, memory every N
    blocks and at exit.  When a ``supervisor`` is attached, every
    divergence is also reported to it (which quarantines the offending
    translation) before the report is returned.
    """
    system = DbtSystem(
        program, policy=policy, vliw_config=vliw_config,
        engine_config=engine_config, supervisor=supervisor,
    )
    interp = Interpreter(program)
    block_index = 0

    last_entry = system.pc

    def _diverged(pc: int, kind: str, details: List[str]) -> LockstepReport:
        if supervisor is not None:
            supervisor.note_divergence(
                last_entry, system.engine.cache, detail=kind)
        return LockstepReport(block_index, Divergence(
            block_index, pc, kind, details,
        ))

    while not system.exited and block_index < max_blocks:
        instret_before = system.core.instret
        last_entry = system.pc
        system.step_block()
        block_index += 1
        retired = system.core.instret - instret_before
        for _ in range(retired):
            if interp.exited:
                break
            interp.step()
        if fault_injector is not None:
            fault_injector(system, block_index)

        if system.exited != interp.exited:
            return _diverged(system.pc, "exit",
                             ["platform exited: %s, interpreter exited: %s"
                              % (system.exited, interp.exited)])
        if not system.exited and system.pc != interp.state.pc:
            return _diverged(system.pc, "pc",
                             ["platform pc %#x != interpreter pc %#x"
                              % (system.pc, interp.state.pc)])
        mismatches = _register_mismatches(system, interp)
        if mismatches:
            return _diverged(system.pc, "registers", mismatches)
        if block_index % memory_check_interval == 0:
            detail = _memory_mismatch(system, interp)
            if detail is not None:
                return _diverged(system.pc, "memory", [detail])

    if system.exited:
        if system.exit_code != interp.exit_code:
            return _diverged(system.pc, "exit-code",
                             ["platform %d != interpreter %d"
                              % (system.exit_code, interp.exit_code)])
        if bytes(system.output) != bytes(interp.output):
            return _diverged(system.pc, "output",
                             ["platform %r != interpreter %r"
                              % (bytes(system.output), bytes(interp.output))])
        detail = _memory_mismatch(system, interp)
        if detail is not None:
            return _diverged(system.pc, "memory", [detail])
    return LockstepReport(block_index)


def _register_mismatches(system: DbtSystem, interp: Interpreter) -> List[str]:
    platform_regs = system.core.regs.architectural()
    reference_regs = interp.state.regs
    return [
        "%s: platform %#x != interpreter %#x"
        % (register_name(index), platform_regs[index], reference_regs[index])
        for index in range(32)
        if platform_regs[index] != reference_regs[index]
    ]


def _memory_mismatch(system: DbtSystem, interp: Interpreter) -> Optional[str]:
    if system.memory.memory.equal_contents(interp.memory):
        return None
    # Locate the first differing page for the report.
    platform_pages = dict(system.memory.memory.pages())
    for base, contents in interp.memory.pages():
        other = platform_pages.get(base, bytes(len(contents)))
        if contents != other:
            for offset, (a, b) in enumerate(zip(other, contents)):
                if a != b:
                    return ("first difference at %#x: platform %#04x != "
                            "interpreter %#04x" % (base + offset, a, b))
    for base, contents in platform_pages.items():
        if any(contents):
            return "platform wrote page %#x the interpreter never touched" % base
    return "memory images differ"
