"""DBT intermediate representation: IR blocks with explicit dependences.

The IR block is the paper's central object (Section IV-A): "before
performing instruction scheduling, the DBT engine has access to an
Intermediate Representation containing all the instructions to schedule.
No speculation can be done outside the scope of a single IR block."

An :class:`IRBlock` is a linear sequence of :class:`IRInstruction` (one
guest basic block or superblock path) plus a dependence graph whose edges
carry a ``relaxable`` flag:

* *relaxable* edges are the ones the DBT may remove to speculate — a
  store->load memory dependence (memory-dependency speculation through
  the MCB) or a branch->instruction control dependence (trace
  speculation with hidden registers); Figure 3 (A) vs (B) is exactly
  "all edges" vs "relaxable edges dropped";
* the GhostBusters pass re-enforces specific relaxable edges (and adds
  ``SPECTRE`` edges) to pin flagged instructions — Figure 3 (C).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..vliw.isa import Condition


class IRKind(enum.Enum):
    """Classes of IR instructions."""

    ALU = "alu"            # dst = op(src1, src2)
    ALUI = "alui"          # dst = op(src1, imm)
    LI = "li"              # dst = imm
    MOV = "mov"            # dst = src1 (also used for speculation commits)
    LOAD = "load"          # dst = mem[src1 + imm]
    STORE = "store"        # mem[src1 + imm] = src2
    CFLUSH = "cflush"      # flush line at src1 + imm
    FENCE = "fence"        # explicit barrier
    RDCYCLE = "rdcycle"    # dst = cycle counter (serialising)
    RDINSTRET = "rdinstret"
    BRANCH_EXIT = "branch_exit"      # leave trace at `target` if cond(src1,src2)
    JUMP_EXIT = "jump_exit"          # unconditional exit to `target`
    INDIRECT_EXIT = "indirect_exit"  # exit to src1 + imm
    SYSCALL_EXIT = "syscall_exit"    # ecall/ebreak: exit into platform


#: IR kinds that terminate or may terminate the block.
EXIT_KINDS = frozenset({
    IRKind.BRANCH_EXIT, IRKind.JUMP_EXIT, IRKind.INDIRECT_EXIT,
    IRKind.SYSCALL_EXIT,
})

#: IR kinds acting as full scheduling barriers.
BARRIER_KINDS = frozenset({IRKind.FENCE, IRKind.RDCYCLE, IRKind.RDINSTRET})


@dataclass
class IRInstruction:
    """One IR instruction.  Registers are guest register numbers until the
    scheduler renames speculative definitions onto hidden registers."""

    kind: IRKind
    op: Optional[str] = None          # ALU sub-operation
    dst: Optional[int] = None
    src1: Optional[int] = None
    src2: Optional[int] = None
    imm: int = 0
    width: int = 8
    signed: bool = True
    condition: Optional[Condition] = None
    target: Optional[int] = None      # guest exit target
    guest_address: Optional[int] = None
    #: Position of the originating guest instruction within the block.
    guest_index: int = 0

    @property
    def is_exit(self) -> bool:
        return self.kind in EXIT_KINDS

    @property
    def is_memory(self) -> bool:
        return self.kind in (IRKind.LOAD, IRKind.STORE, IRKind.CFLUSH)

    @property
    def is_barrier(self) -> bool:
        return self.kind in BARRIER_KINDS

    def uses(self) -> Tuple[int, ...]:
        """Guest registers read (x0 excluded: it is a constant)."""
        regs = []
        for reg in (self.src1, self.src2):
            if reg is not None and reg != 0:
                regs.append(reg)
        return tuple(regs)

    def defines(self) -> Optional[int]:
        """Guest register written, or None (x0 writes are discarded)."""
        if self.dst is not None and self.dst != 0:
            return self.dst
        return None

    def describe(self) -> str:
        kind = self.kind
        if kind is IRKind.ALU:
            return "%s r%d, r%d, r%d" % (self.op, self.dst, self.src1, self.src2)
        if kind is IRKind.ALUI:
            return "%s r%d, r%d, %d" % (self.op, self.dst, self.src1, self.imm)
        if kind is IRKind.LI:
            return "li r%d, %d" % (self.dst, self.imm)
        if kind is IRKind.MOV:
            return "mov r%d, r%d" % (self.dst, self.src1)
        if kind is IRKind.LOAD:
            return "ld%d r%d, %d(r%d)" % (self.width * 8, self.dst, self.imm, self.src1)
        if kind is IRKind.STORE:
            return "st%d r%d, %d(r%d)" % (self.width * 8, self.src2, self.imm, self.src1)
        if kind is IRKind.CFLUSH:
            return "cflush %d(r%d)" % (self.imm, self.src1)
        if kind is IRKind.BRANCH_EXIT:
            return "exit.%s r%d, r%d -> %#x" % (
                self.condition.value, self.src1, self.src2, self.target,
            )
        if kind is IRKind.JUMP_EXIT:
            return "exit -> %#x" % self.target
        if kind is IRKind.INDIRECT_EXIT:
            return "exit -> r%d + %d" % (self.src1, self.imm)
        if kind is IRKind.SYSCALL_EXIT:
            return "syscall @ %#x" % (self.guest_address or 0)
        if kind in (IRKind.RDCYCLE, IRKind.RDINSTRET):
            return "%s r%d" % (kind.value, self.dst)
        return kind.value


class DepKind(enum.Enum):
    """Dependence edge classes."""

    DATA = "data"        # RAW through a register
    ANTI = "anti"        # WAR through a register
    OUTPUT = "output"    # WAW through a register
    MEM = "mem"          # memory ordering (store->load is the relaxable one)
    CTRL = "ctrl"        # branch -> later instruction
    SINK = "sink"        # instruction -> later exit (may not sink below it)
    BARRIER = "barrier"  # fence / rdcycle serialisation
    SPECTRE = "spectre"  # mitigation-inserted control dependency


@dataclass(frozen=True, slots=True)
class Dependence:
    """A scheduling edge: ``dst`` may not be scheduled before ``src``.

    ``relaxable`` edges may be dropped by the speculation machinery;
    ``min_delay`` is the minimum bundle distance (0 allows co-issue,
    which is only safe for SINK/ANTI edges thanks to the VLIW
    read-before-write semantics).
    """

    src: int
    dst: int
    kind: DepKind
    relaxable: bool = False
    min_delay: int = 1


class IRBlock:
    """A straight-line IR region (basic block or superblock)."""

    def __init__(self, entry: int, instructions: Optional[List[IRInstruction]] = None):
        self.entry = entry
        self.instructions: List[IRInstruction] = instructions or []
        self._dependences: Optional[List[Dependence]] = None
        #: Extra edges added by mitigation passes (kept separate so the
        #: analysis/reporting can show exactly what a pass did).
        self.extra_dependences: List[Dependence] = []
        #: Guest instruction count this block covers (set by the builder).
        self.guest_length = 0

    def append(self, instruction: IRInstruction) -> int:
        """Add an instruction; returns its index.  Invalidates cached deps."""
        self.instructions.append(instruction)
        self._dependences = None
        return len(self.instructions) - 1

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    # ------------------------------------------------------------------
    # Dependence construction.
    # ------------------------------------------------------------------

    def dependences(self) -> List[Dependence]:
        """All dependence edges (computed once, then cached)."""
        if self._dependences is None:
            self._dependences = self._build_dependences()
        return self._dependences + self.extra_dependences

    def invalidate_dependences(self) -> None:
        self._dependences = None

    def _build_dependences(self) -> List[Dependence]:
        edges: List[Dependence] = []
        last_def: Dict[int, int] = {}
        uses_since_def: Dict[int, List[int]] = {}
        #: (index, is_true_store) for every memory writer so far; loads may
        #: only be speculated above true stores, never above cflush.
        mem_writers: List[Tuple[int, bool]] = []
        loads_since_any_store: List[int] = []
        exits: List[int] = []
        barrier: Optional[int] = None

        for index, inst in enumerate(self.instructions):
            # Register dependences.
            for reg in inst.uses():
                if reg in last_def:
                    edges.append(Dependence(last_def[reg], index, DepKind.DATA))
                uses_since_def.setdefault(reg, []).append(index)
            defined = inst.defines()
            if defined is not None:
                if defined in last_def:
                    edges.append(Dependence(last_def[defined], index, DepKind.OUTPUT))
                for user in uses_since_def.get(defined, ()):
                    if user != index:
                        edges.append(
                            Dependence(user, index, DepKind.ANTI, min_delay=0)
                        )
                last_def[defined] = index
                uses_since_def[defined] = []

            # Memory ordering.
            if inst.kind is IRKind.LOAD:
                for writer, is_true_store in mem_writers:
                    # store->load is the relaxable edge of memory-dependency
                    # speculation; cflush->load stays enforced.
                    edges.append(
                        Dependence(writer, index, DepKind.MEM, relaxable=is_true_store)
                    )
                loads_since_any_store.append(index)
            elif inst.kind is IRKind.STORE or inst.kind is IRKind.CFLUSH:
                for writer, _ in mem_writers:
                    edges.append(Dependence(writer, index, DepKind.MEM))
                for load in loads_since_any_store:
                    edges.append(Dependence(load, index, DepKind.MEM))
                mem_writers.append((index, inst.kind is IRKind.STORE))
                loads_since_any_store = []

            # Control dependences.
            for exit_index in exits:
                if inst.is_exit:
                    edges.append(Dependence(exit_index, index, DepKind.CTRL))
                elif inst.kind in (IRKind.STORE, IRKind.CFLUSH) or inst.is_barrier:
                    # Side effects never cross an exit.
                    edges.append(Dependence(exit_index, index, DepKind.CTRL))
                else:
                    # Loads/ALU may be hoisted above the exit: relaxable.
                    edges.append(
                        Dependence(exit_index, index, DepKind.CTRL, relaxable=True)
                    )
            if inst.is_exit:
                # Nothing before an exit may sink below it.
                for prior in range(index):
                    edges.append(
                        Dependence(prior, index, DepKind.SINK, min_delay=0)
                    )
                exits.append(index)

            # Barriers serialise everything.
            if barrier is not None:
                edges.append(Dependence(barrier, index, DepKind.BARRIER))
            if inst.is_barrier:
                for prior in range(index):
                    edges.append(Dependence(prior, index, DepKind.BARRIER))
                barrier = index

        return edges

    # ------------------------------------------------------------------
    # Mitigation support.
    # ------------------------------------------------------------------

    def add_spectre_dependence(self, src: int, dst: int) -> None:
        """Pin ``dst`` after ``src`` (the paper's inserted control dep)."""
        self.extra_dependences.append(
            Dependence(src, dst, DepKind.SPECTRE, relaxable=False)
        )

    def describe(self) -> str:
        lines = ["IR block @ %#x (%d instructions)" % (self.entry, len(self.instructions))]
        for index, inst in enumerate(self.instructions):
            lines.append("  %3d: %s" % (index, inst.describe()))
        return "\n".join(lines)


def predecessors_by_kind(block: IRBlock) -> Dict[int, List[Dependence]]:
    """Incoming edges of every instruction, as a dict keyed by dst index."""
    incoming: Dict[int, List[Dependence]] = {}
    for edge in block.dependences():
        incoming.setdefault(edge.dst, []).append(edge)
    return incoming
