"""Static legality verifier for scheduled blocks.

Given the IR a block was scheduled from and the resulting
:class:`TranslatedBlock`, :func:`check_schedule` re-derives the
dependence graph and verifies that the schedule could only have been
produced by *legal* speculation:

* every non-relaxable edge is respected (with its minimum bundle
  distance);
* a load moved above a store it depends on carries the speculative
  opcode and an MCB tag whose release store is the last bypassed store;
* an instruction moved above a trace exit either writes a hidden
  register or writes nothing architectural;
* the number of simultaneously live MCB entries never exceeds the
  machine's MCB capacity.

The verifier is used by the property-based scheduler tests and is
exported as a public API so downstream users can sanity-check custom
scheduler changes (`repro.dbt.verify.check_schedule`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..vliw.block import TranslatedBlock
from ..vliw.config import VliwConfig
from ..vliw.isa import VliwOp, VliwOpcode
from .ir import DepKind, IRBlock


class ScheduleViolation(AssertionError):
    """Raised when a translated block violates a scheduling invariant."""


@dataclass
class _Placed:
    """One scheduled op with its position."""

    op: VliwOp
    bundle: int
    slot: int


def _positions(block: TranslatedBlock) -> List[_Placed]:
    placed = []
    for bundle_index, bundle in enumerate(block.bundles):
        for slot, op in enumerate(bundle):
            placed.append(_Placed(op, bundle_index, slot))
    return placed


def _match_ops_to_ir(ir: IRBlock, placed: Sequence[_Placed],
                     config: VliwConfig) -> List[Optional[_Placed]]:
    """Map each IR instruction to its scheduled op.

    The scheduler may rename destinations (hidden registers) and insert
    commit MOVs, so matching keys on (opcode class, sources-or-hidden,
    immediates, guest origin).  Commit MOVs and renamed instructions are
    tolerated; a missing non-renameable instruction is a violation.
    """
    from .codegen import vliw_op_from_ir

    remaining = list(placed)
    mapping: List[Optional[_Placed]] = []
    for index, inst in enumerate(ir.instructions):
        expected = vliw_op_from_ir(inst)
        found = None
        for candidate in remaining:
            op = candidate.op
            if op.opcode is not expected.opcode:
                continue
            if op.opcode is VliwOpcode.ALU and op.alu_op != expected.alu_op:
                continue
            if (op.imm, op.width, op.condition, op.target) != (
                expected.imm, expected.width, expected.condition, expected.target,
            ):
                continue
            if op.origin != expected.origin:
                continue
            # Sources must match up to hidden-register renaming.
            ok = True
            for got, want in zip(op.sources(), expected.sources()):
                if got != want and got < 32:
                    ok = False
                    break
            if not ok:
                continue
            # Destination must match or be a hidden register.
            if expected.dest is not None and op.dest != expected.dest:
                if op.dest is None or op.dest < 32:
                    continue
            found = candidate
            break
        if found is not None:
            remaining.remove(found)
        mapping.append(found)
    return mapping


def check_schedule(ir: IRBlock, block: TranslatedBlock,
                   config: Optional[VliwConfig] = None) -> None:
    """Verify that ``block`` is a legal schedule of ``ir``.

    Raises :class:`ScheduleViolation` on the first problem found.
    """
    config = config or VliwConfig()
    placed = _positions(block)
    mapping = _match_ops_to_ir(ir, placed, config)

    for index, (inst, slot) in enumerate(zip(ir.instructions, mapping)):
        if slot is None:
            raise ScheduleViolation(
                "IR instruction %d (%s) has no scheduled counterpart"
                % (index, inst.describe())
            )

    # 1. Non-relaxable edges respected.
    for edge in ir.dependences():
        src = mapping[edge.src]
        dst = mapping[edge.dst]
        if src is None or dst is None:
            continue
        if edge.relaxable:
            self_check = _relaxed_edge_ok(edge, src, dst)
            if not self_check:
                raise ScheduleViolation(
                    "illegally relaxed %s edge %d->%d without speculation "
                    "markers" % (edge.kind.value, edge.src, edge.dst)
                )
            continue
        if edge.kind in (DepKind.OUTPUT, DepKind.ANTI):
            # Register WAW/WAR hazards disappear when the conflicting
            # definition was renamed onto a hidden register (the pinned
            # commit MOV then carries the architectural ordering), or —
            # for WAR — when the *reader* was rewritten to read a hidden
            # register instead of the architectural one.
            if _definition_renamed(ir, edge.src, src) or _definition_renamed(
                ir, edge.dst, dst,
            ):
                continue
            if edge.kind is DepKind.ANTI and _sources_renamed(ir, edge.src, src):
                continue
        if dst.bundle - src.bundle < edge.min_delay:
            raise ScheduleViolation(
                "enforced %s edge %d->%d violated: bundles %d -> %d "
                "(min delay %d)" % (
                    edge.kind.value, edge.src, edge.dst,
                    src.bundle, dst.bundle, edge.min_delay,
                )
            )

    # 2. MCB capacity: live speculative entries at any store.
    _check_mcb_liveness(block, config)

    # 3. Slot legality of every bundle.
    from ..vliw.bundle import fits
    for bundle_index, bundle in enumerate(block.bundles):
        if not fits(list(bundle), config):
            raise ScheduleViolation(
                "bundle %d exceeds machine issue capabilities" % bundle_index
            )


def _definition_renamed(ir: IRBlock, index: int, placed: _Placed) -> bool:
    """Whether IR instruction ``index``'s definition was renamed onto a
    hidden register in the schedule."""
    defined = ir.instructions[index].defines()
    if defined is None:
        return False
    dest = placed.op.destination()
    return dest is not None and dest != defined and dest >= 32


def _sources_renamed(ir: IRBlock, index: int, placed: _Placed) -> bool:
    """Whether any architectural source of IR instruction ``index`` was
    rewritten to a hidden register in the schedule."""
    expected = ir.instructions[index]
    wanted = [reg for reg in (expected.src1, expected.src2) if reg is not None]
    got = list(placed.op.sources())
    for want, have in zip(wanted, got):
        if have != want and have >= 32:
            return True
    return False


def _relaxed_edge_ok(edge, src: _Placed, dst: _Placed) -> bool:
    """A relaxable edge may be broken only with the right machinery."""
    if dst.bundle > src.bundle:
        return True  # not actually relaxed
    if edge.kind is DepKind.MEM:
        # Load above (or beside) a store: must be MCB-speculative...
        if dst.op.opcode is VliwOpcode.LOAD and dst.op.speculative:
            return True
        # ...unless it shares the store's bundle and executes after it in
        # slot order is impossible (slot order == emission order); treat
        # same-bundle non-speculative as illegal.
        return False
    if edge.kind is DepKind.CTRL:
        # Hoisted above an exit: must not touch architectural state.
        dest = dst.op.destination()
        return dest is None or dest >= 32
    return False


def _check_mcb_liveness(block: TranslatedBlock, config: VliwConfig) -> None:
    live: Dict[int, int] = {}
    peak = 0
    for bundle in block.bundles:
        for op in bundle:
            if op.opcode is VliwOpcode.STORE:
                for tag in op.mcb_releases:
                    live.pop(tag, None)
            if op.opcode is VliwOpcode.LOAD and op.speculative:
                live[op.spec_tag] = 1
                peak = max(peak, len(live))
    if peak > config.mcb_entries:
        raise ScheduleViolation(
            "schedule keeps %d speculative loads live, MCB holds %d"
            % (peak, config.mcb_entries)
        )
