"""Shared, policy-keyed translation pool for multi-guest execution.

One process hosting many guests (``repro sweep --batched``, the serve
fleet's warm workers, :class:`~repro.platform.multiguest.MultiGuestHost`)
redoes identical translation work per guest today: every
:class:`~repro.platform.system.DbtSystem` owns its engine's translated
blocks, finalized fast-path tuples, and compiled code objects, so N
guests of the same (program, policy, config) pay N× the translation and
codegen cost for byte-identical artifacts.

This module is the in-process analogue of the on-disk ``--tcache-dir``
persistent cache, one level up: it shares the *objects*, not just the
marshalled code.  The pool is sliced into **shards**, one per

    sha256(program bytes, policy, VliwConfig, DbtEngineConfig)

— the same information the ``--tcache-dir`` persist key encodes, which
is exactly the equivalence class within which every tier of this
simulator produces bit-identical translations (the four-way differential
suite is the gate).  Guests of the same shard share:

* **first-pass translations** — ``pc -> (TranslatedBlock, BasicBlock)``;
* **optimized/reoptimized superblocks** — keyed by ``(entry, block path,
  final_next, kind)`` so a guest only reuses a superblock built from the
  *same* profile-discovered path (profiles are per-guest and may
  diverge mid-run between guests at different execution points);
* transitively, everything hanging off a shared
  :class:`~repro.vliw.block.TranslatedBlock`: the finalized fast-path
  tuple (``block._finalized``), compiled code objects
  (``fblock.compiled``), and megablock envelopes — all host-side
  acceleration state with no simulated observables.

What stays **per guest**: registers, data memory, the VLIW core and its
cache/MCB timing state, the block profile and hotness counters, the
chain index, tcache install/eviction state, and every
:class:`~repro.dbt.engine.DbtEngineStats` counter (a pool hit replays
the same stat increments a local translation would have made, so engine
observables stay byte-identical).

Sharing is **identity-sensitive** in one place: ``finalize_block``
memoizes per block on ``cached.config is config``.  Each shard therefore
canonicalizes a single :class:`~repro.vliw.config.VliwConfig` instance
(value-equal to every guest's own) that all member systems adopt, so a
shared block finalizes once instead of thrashing per guest.

The pool is plain data with no locks: guests in one
:class:`MultiGuestHost` interleave cooperatively on one thread, and the
serve fleet gives each worker process its own pool.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..isa.container import to_bytes as program_to_bytes
from ..isa.program import Program
from ..vliw.codegen import _canon
from ..vliw.config import VliwConfig

__all__ = ["PoolStats", "PoolShard", "TranslationPool", "superblock_key"]

#: Bump when the shard key derivation or stored artifact shape changes.
_POOL_VERSION = 1


@dataclass
class PoolStats:
    """Pool-wide counters, exported as ``dbt.pool.{hits,installs,guests}``.

    ``guests`` counts every system constructed against the pool —
    including ones whose sharing was gated off (observer/supervisor
    attached), so the counter shows how much of the fleet the gate is
    excluding.  ``hits``/``installs`` count artifact-level reuse across
    all shards.
    """

    hits: int = 0
    installs: int = 0
    guests: int = 0

    def summary(self) -> str:
        return ("%d guest(s), %d artifact install(s), %d pool hit(s)"
                % (self.guests, self.installs, self.hits))


def superblock_key(entry: int, path_entries: Tuple[int, ...],
                   final_next: Optional[int], kind: str):
    """Artifact key for an optimized superblock within a shard.

    The block path is profile-discovered, so two guests at the same
    (program, policy, config) may still build *different* superblocks
    for one entry if their profiles diverged; keying on the full path
    (plus ``kind``, which separates ``optimized`` from the
    memory-speculation-free ``reoptimized`` retranslations) keeps a hit
    byte-identical to what the guest would have built locally.
    """
    return (entry, path_entries, final_next, kind)


class PoolShard:
    """Artifacts shared by every guest of one (program, policy, config).

    ``vliw_config`` is the shard-canonical instance all member systems
    adopt (see the module docstring).  ``firstpass`` maps a guest pc to
    ``(TranslatedBlock, BasicBlock)``; ``optimized`` maps
    :func:`superblock_key` to ``(TranslatedBlock, PoisonReport|None)``.
    """

    __slots__ = ("key", "vliw_config", "firstpass", "optimized", "stats")

    def __init__(self, key: str, vliw_config: VliwConfig,
                 stats: PoolStats) -> None:
        self.key = key
        self.vliw_config = vliw_config
        self.firstpass: Dict[int, tuple] = {}
        self.optimized: Dict[tuple, tuple] = {}
        self.stats = stats

    def lookup_firstpass(self, pc: int):
        artifact = self.firstpass.get(pc)
        if artifact is not None:
            self.stats.hits += 1
        return artifact

    def install_firstpass(self, pc: int, translated, basic_block) -> None:
        self.firstpass[pc] = (translated, basic_block)
        self.stats.installs += 1

    def lookup_optimized(self, key):
        artifact = self.optimized.get(key)
        if artifact is not None:
            self.stats.hits += 1
        return artifact

    def install_optimized(self, key, translated, report) -> None:
        self.optimized[key] = (translated, report)
        self.stats.installs += 1


class TranslationPool:
    """A process-wide pool of :class:`PoolShard`, lazily created per
    (program, policy, VliwConfig, DbtEngineConfig) equivalence class."""

    def __init__(self) -> None:
        self._shards: Dict[str, PoolShard] = {}
        self.stats = PoolStats()
        #: ``mem.cache.lane.*`` counters accumulated from every
        #: multi-guest host that ran its guests on the vectorized
        #: timing engine over this pool (the lane groups themselves are
        #: per host — lanes hold per-guest state and must not outlive
        #: their batch; only the accounting is pooled here).
        self.lane_counters: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._shards)

    def shard(self, program: Program, policy, vliw_config: VliwConfig,
              engine_config) -> PoolShard:
        """The shard for this guest class, creating it on first use.

        The first guest of a class donates its ``VliwConfig`` as the
        shard-canonical instance; later guests (value-equal by key
        construction) adopt it.
        """
        key = self._shard_key(program, policy, vliw_config, engine_config)
        existing = self._shards.get(key)
        if existing is None:
            existing = PoolShard(key, vliw_config, self.stats)
            self._shards[key] = existing
        return existing

    def publish(self, registry) -> None:
        """Export the pool counters into a metrics registry."""
        registry.counter(
            "dbt.pool.guests",
            help="guest systems constructed against the translation pool",
        ).inc(self.stats.guests)
        registry.counter(
            "dbt.pool.installs",
            help="translation artifacts installed into the shared pool",
        ).inc(self.stats.installs)
        registry.counter(
            "dbt.pool.hits",
            help="guest translations served from the shared pool",
        ).inc(self.stats.hits)
        for name, value in sorted(self.lane_counters.items()):
            registry.counter(
                name,
                help="vectorized lane-batched cache timing engine",
            ).inc(value)

    def merge_lane_counters(self, counters: Dict[str, int]) -> None:
        """Fold one host's lane-engine counters into the pool totals."""
        for name, value in counters.items():
            self.lane_counters[name] = self.lane_counters.get(name, 0) + value

    @staticmethod
    def _shard_key(program: Program, policy, vliw_config: VliwConfig,
                   engine_config) -> str:
        from .engine import DbtEngineConfig  # circular at module scope

        h = hashlib.sha256()
        h.update(b"repro-pool/%d\n" % _POOL_VERSION)
        h.update(program_to_bytes(program))
        h.update(policy.value.encode())
        h.update(b"\n")
        h.update(_canon(vliw_config).encode())
        h.update(b"\n")
        h.update(_canon(engine_config or DbtEngineConfig()).encode())
        return h.hexdigest()
