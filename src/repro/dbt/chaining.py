"""Block chaining: direct block→block dispatch without engine round trips.

Production DBTs (QEMU's ``tb_jmp_cache`` chaining, Transmeta CMS)
rarely return to the dispatcher between translated blocks: each block's
exit is patched to jump straight to the next translation.  This module
is the software analogue for our platform.  When chaining is enabled
(``DbtEngineConfig.chain``), :class:`ChainedDispatcher` follows a
block's exit PC to the next installed translation and executes it
directly, skipping the per-block round trip through
``DbtSystem.step_block`` → ``DbtEngine.lookup`` →
``DbtEngine.record_execution`` that dominates host cost now that
intra-block execution runs on the fast path.

Two dispatch strategies implement the same semantics:

* the **fused fast path** (:meth:`~repro.vliw.pipeline.VliwCore.execute_chain`)
  — when the core runs the fast path with no observer, tracer,
  supervisor or fault guard, the whole chain executes inside one core
  call: machine state is hoisted once and successive blocks run
  back-to-back, with the profiling seam (block counts, branch outcomes,
  the hotness trigger, budget checks) inlined between blocks.  This is
  the configuration ``repro bench-host`` measures;
* the **general loop** (:meth:`ChainedDispatcher._dispatch_general`) —
  with a supervisor, observer, tracer or the reference interpreter
  attached, each block still goes through ``core.execute_block`` (or
  ``supervisor.execute``) so every hook fires exactly as in the seed
  loop, and only the engine round trip is elided.

Both record profiling feedback with the exact semantics of
:meth:`~repro.dbt.engine.DbtEngine.record_execution`, and break out of
the chain back to the engine loop precisely when the seed loop would do
engine-visible work:

* ``hot`` — a first-pass block crossed ``hot_threshold`` and was
  optimized (the replacement must be fetched through ``engine.lookup``);
* ``rollback`` — an MCB rollback occurred (adaptive conflict
  retranslation may replace the block);
* ``syscall`` — the platform must service the syscall;
* ``miss`` — the exit PC has no installed translation;
* ``budget`` — the platform's block/cycle budget is due for a check.

Because every engine decision still happens at the same block boundary
with the same profile state, translation order, optimization decisions
and cycle counts are **bit-identical** to the unchained loop (gated by
``tests/platform/test_fastpath_differential.py``).

Chain links are bookkeeping over the translation cache's contents, so
every cache mutation must tear down the affected links: installs that
replace a translation, invalidations (including supervisor
quarantines), LRU evictions, and wholesale capacity flushes all unlink
through :class:`ChainIndex` — synchronously, inside the cache, because
under supervision a mid-chain injector fault can evict the very block
the dispatcher is about to jump to.  The per-entry :class:`ChainLink`
records (pre-resolved finalized form, branch-profiling metadata,
rollback possibility) live in the same index and die with the links, so
a replaced translation can never be executed through a stale record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from ..vliw.block import TranslatedBlock
from ..vliw.codegen import run_compiled_chain
from ..vliw.fastpath import finalize_block
from ..vliw.isa import VliwOpcode
from ..vliw.pipeline import BlockResult, ExitReason
from .profile import BranchProfile


@dataclass
class ChainStats:
    """Lifetime counters of one chained dispatcher."""

    #: Links created (pred exit PC resolved to an installed translation).
    links: int = 0
    #: Blocks executed from inside a chain (including the chain heads).
    dispatches: int = 0
    #: Chain exits back to the engine loop, by reason.
    breaks: Dict[str, int] = field(default_factory=dict)


class ChainLink:
    """Per-translation dispatch record: everything the chained
    dispatcher needs about one installed block, resolved once.

    ``branch`` is ``(branch address, taken target)`` when the block's
    terminator is a conditional branch with distinct targets (the same
    condition ``record_execution`` re-derives on every execution), else
    ``None``.  ``can_rollback`` is whether the block contains any
    MCB-speculative load — the only way an execution can raise a
    rollback — so the fused dispatcher skips the per-block register
    snapshot and store log for blocks that cannot possibly need them.
    ``fblock`` is the finalized form (``None`` until the fast path first
    needs it).
    """

    __slots__ = ("block", "fblock", "entry", "firstpass", "branch",
                 "can_rollback")

    def __init__(self, block: TranslatedBlock,
                 fblock: Optional[object],
                 branch: Optional[Tuple[int, int]]) -> None:
        self.block = block
        self.fblock = fblock
        self.entry = block.guest_entry
        self.firstpass = block.kind == "firstpass"
        self.branch = branch
        self.can_rollback = any(
            op.opcode is VliwOpcode.LOAD and op.speculative
            for bundle in block.bundles for op in bundle
        )


class ChainIndex:
    """Successor links between installed translations.

    Keeps a forward map (``pred entry → {exit pc → successor link}``)
    and a reverse map (``succ entry → {pred entries}``) so that dropping
    a translation can sever both the links *from* it and the links *to*
    it without scanning the whole index, plus the per-entry
    :class:`ChainLink` records themselves — one bookkeeping object per
    installed translation, dropped with the translation.
    """

    def __init__(self) -> None:
        self._out: Dict[int, Dict[int, ChainLink]] = {}
        self._preds: Dict[int, Set[int]] = {}
        #: Dispatch records per installed entry (chain heads included).
        self.records: Dict[int, ChainLink] = {}

    def successors(self, entry: int) -> Optional[Dict[int, ChainLink]]:
        """Forward links of ``entry`` (inspection)."""
        return self._out.get(entry)

    def link(self, pred_entry: int, next_pc: int,
             successor: ChainLink) -> None:
        """Record that ``pred_entry`` exiting to ``next_pc`` dispatches
        straight to ``successor``."""
        out = self._out.get(pred_entry)
        if out is None:
            out = {}
            self._out[pred_entry] = out
        out[next_pc] = successor
        succ_entry = successor.entry
        preds = self._preds.get(succ_entry)
        if preds is None:
            preds = set()
            self._preds[succ_entry] = preds
        preds.add(pred_entry)

    def unlink(self, entry: int) -> None:
        """Sever every link from and to ``entry`` (its translation is
        being replaced, invalidated, quarantined or evicted), and drop
        its dispatch record."""
        self.records.pop(entry, None)
        out = self._out.pop(entry, None)
        if out is not None:
            for successor in out.values():
                preds = self._preds.get(successor.entry)
                if preds is not None:
                    preds.discard(entry)
        preds = self._preds.pop(entry, None)
        if preds is not None:
            for pred in preds:
                pred_out = self._out.get(pred)
                if pred_out is not None:
                    stale = [pc for pc, successor in pred_out.items()
                             if successor.entry == entry]
                    for pc in stale:
                        del pred_out[pc]

    def clear(self) -> None:
        """Drop every link and record (wholesale capacity flush).  In
        place: the dispatcher holds direct references to the internal
        maps."""
        self._out.clear()
        self._preds.clear()
        self.records.clear()

    def link_count(self) -> int:
        return sum(len(out) for out in self._out.values())

    def has_links(self, entry: int) -> bool:
        """Whether any link from *or* to ``entry`` survives (tests)."""
        if self._out.get(entry):
            return True
        if self._preds.get(entry):
            return True
        return any(successor.entry == entry
                   for out in self._out.values()
                   for successor in out.values())


class ChainContext:
    """Hoisted engine state :meth:`VliwCore.execute_chain` dispatches
    against — direct references to the live dicts, built once per
    dispatcher.  Everything here is mutated only in place (the cache's
    ``_blocks``, the index's ``_out`` and the profile's dicts are never
    rebound), so the references stay valid for the system's lifetime.
    """

    __slots__ = ("out", "records", "raw_blocks", "block_counts",
                 "branches", "branch_profile", "hot_threshold",
                 "max_optimizations", "engine_stats", "max_blocks",
                 "max_cycles", "lru", "link_successor")

    def __init__(self, dispatcher: "ChainedDispatcher") -> None:
        engine = dispatcher.engine
        limits = dispatcher.system.platform_config
        self.out = dispatcher.chains._out
        self.records = dispatcher.chains.records
        self.raw_blocks = engine.cache._blocks
        self.block_counts = engine.profile._block_counts
        self.branches = engine.profile._branches
        self.branch_profile = BranchProfile
        self.hot_threshold = engine.config.hot_threshold
        self.max_optimizations = engine.config.max_optimizations
        self.engine_stats = engine.stats
        self.max_blocks = limits.max_blocks
        self.max_cycles = limits.max_cycles
        self.lru = engine.cache._lru
        self.link_successor = dispatcher._link_successor


class ChainedDispatcher:
    """Runs chains of linked translations on behalf of ``DbtSystem``.

    One instance per system; created when ``DbtEngineConfig.chain`` is
    set.  ``dispatch`` takes the block ``step_block`` just looked up,
    executes it and every linked successor, and returns the final
    :class:`~repro.vliw.pipeline.BlockResult` — the one the seed loop
    would have been holding at the same boundary — for the caller to
    apply syscall/PC handling to.
    """

    def __init__(self, system) -> None:
        self.system = system
        self.engine = system.engine
        self.chains: ChainIndex = system.engine.chains
        self.stats = ChainStats()
        self._context = ChainContext(self)
        #: Optional :class:`~repro.dbt.traces.TraceManager` (tier-4);
        #: set by the system when the trace tier is selected.  None
        #: keeps both dispatch strategies on the exact tier-3 code path.
        self.traces = None

    # ------------------------------------------------------------------
    # Dispatch records.
    # ------------------------------------------------------------------

    def _record_for(self, block: TranslatedBlock) -> ChainLink:
        """The dispatch record of ``block``, created on first sight.

        Records are keyed by entry and die with the translation (every
        cache mutation unlinks through :class:`ChainIndex`), so the
        identity check only fires when a caller hands us a block the
        cache does not know about yet — e.g. a supervisor mid-ladder.
        """
        records = self.chains.records
        record = records.get(block.guest_entry)
        if record is None or record.block is not block:
            record = self._make_record(block)
        return record

    def _make_record(self, block: TranslatedBlock) -> ChainLink:
        entry = block.guest_entry
        basic_block = self.engine._basic_blocks.get(entry)
        branch: Optional[Tuple[int, int]] = None
        if basic_block is not None and basic_block.terminator.is_branch:
            targets = basic_block.branch_targets()
            if targets is not None and targets[0] != targets[1]:
                branch = (basic_block.terminator.address, targets[0])
        core = self.system.core
        fblock = (finalize_block(block, core.config)
                  if core.use_fast_path else None)
        record = ChainLink(block, fblock, branch)
        self.chains.records[entry] = record
        return record

    def _link_successor(self, pred_entry: int, next_pc: int,
                        block: TranslatedBlock) -> ChainLink:
        """Create the chain link ``pred_entry`` → ``next_pc`` and return
        the successor's dispatch record."""
        record = self._record_for(block)
        self.chains.link(pred_entry, next_pc, record)
        self.stats.links += 1
        return record

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------

    def dispatch(self, block: TranslatedBlock) -> BlockResult:
        """Execute ``block`` and chase chain links until a break."""
        system = self.system
        core = system.core
        if (system.supervisor is None
                and core.observer is None
                and self.engine.observer is None
                and core.tracer is None
                and core.use_fast_path
                and not core.guard_faults):
            return self._dispatch_fused(block)
        return self._dispatch_general(block)

    def _dispatch_fused(self, block: TranslatedBlock) -> BlockResult:
        """Whole-chain execution inside the core (see module docstring).

        With the compiled tier selected, the chain runs through
        :func:`repro.vliw.codegen.run_compiled_chain` — the same seam
        semantics with each block body being its specialized compiled
        function."""
        system = self.system
        engine = self.engine
        core = system.core
        record = self._record_for(block)
        if record.fblock is None:
            record.fblock = finalize_block(record.block, core.config)
        if core.use_compiled:
            if self.traces is not None:
                from .traces import run_traced_chain

                result, reason, record, blocks_executed, dispatches = (
                    run_traced_chain(core, record, self._context,
                                     system.blocks_executed, self.traces))
            else:
                result, reason, record, blocks_executed, dispatches = (
                    run_compiled_chain(core, record, self._context,
                                       system.blocks_executed))
        else:
            result, reason, record, blocks_executed, dispatches = (
                core.execute_chain(record, self._context,
                                   system.blocks_executed))
        system.blocks_executed = blocks_executed
        stats = self.stats
        stats.dispatches += dispatches
        stats.breaks[reason] = stats.breaks.get(reason, 0) + 1
        # Engine-visible follow-ups, exactly where record_execution
        # would have run them (after the profiling seam of the block
        # that broke the chain).
        if reason == "hot":
            engine.optimize(record.entry)
        elif reason == "rollback":
            engine._note_rollback(record.block)
        return result

    def _dispatch_general(self, block: TranslatedBlock) -> BlockResult:
        """Per-block chained loop for instrumented/supervised systems.

        Inlines the seed loop's per-block work — execution, profiling
        feedback, the hotness trigger, rollback notification and budget
        checks — with everything hot hoisted into locals, while still
        executing each block through the core's (or supervisor's) public
        entry point so every observer, tracer and fault-guard hook fires
        exactly as in the seed loop.
        """
        system = self.system
        engine = self.engine
        core = system.core
        supervisor = system.supervisor
        observer = engine.observer
        stats = self.stats
        chains = self.chains
        out_links = chains._out
        raw_blocks = engine.cache._blocks
        profile = engine.profile
        block_counts = profile._block_counts
        branches = profile._branches
        config = engine.config
        hot_threshold = config.hot_threshold
        max_optimizations = config.max_optimizations
        engine_stats = engine.stats
        limits = system.platform_config
        max_blocks = limits.max_blocks
        max_cycles = limits.max_cycles
        execute_block = core.execute_block
        syscall = ExitReason.SYSCALL
        lru = engine.cache._lru
        blocks_executed = system.blocks_executed
        dispatches = 0
        chain_start_cycle = core.cycle if observer is not None else 0
        if self.traces is not None:
            # Trace recording/compilation stays visible (and the
            # background compiler warm) under instrumentation, but
            # megablocks never *execute* here: every observer,
            # supervisor and tracer hook must keep firing per block.
            self.traces.observe(block.guest_entry)

        while True:
            if supervisor is not None:
                result, block = supervisor.execute(system, block)
            else:
                result = execute_block(block)
            blocks_executed += 1
            dispatches += 1
            record = self._record_for(block)
            entry = record.entry
            if lru:
                # The unchained loop refreshes LRU recency on every
                # ``engine.lookup``; mirror it per dispatched block so
                # eviction order stays bit-identical.  ``pop`` guards
                # against a mid-chain invalidation (injector eviction).
                current = raw_blocks.pop(entry, None)
                if current is not None:
                    raw_blocks[entry] = current
            # record_execution, inlined: block count ...
            count = block_counts.get(entry, 0) + 1
            block_counts[entry] = count
            if observer is not None:
                observer.profile_block()
            # ... branch outcome ...
            meta = record.branch
            if meta is not None and result.reason is not syscall:
                branch_address, taken_target = meta
                branch_profile = branches.get(branch_address)
                if branch_profile is None:
                    branch_profile = BranchProfile()
                    branches[branch_address] = branch_profile
                if result.next_pc == taken_target:
                    branch_profile.taken += 1
                else:
                    branch_profile.not_taken += 1
                if observer is not None:
                    observer.profile_branch()
            # ... hotness trigger / rollback notification.
            if (
                record.firstpass
                and count >= hot_threshold
                and engine_stats.optimizations < max_optimizations
            ):
                if observer is not None:
                    observer.emit("hot_block", entry="%#x" % entry,
                                  executions=count)
                engine.optimize(entry)
                reason = "hot"
                break
            elif result.rolled_back:
                engine._note_rollback(block)
                reason = "rollback"
                break
            if result.reason is syscall:
                reason = "syscall"
                break
            if blocks_executed >= max_blocks or core.cycle >= max_cycles:
                reason = "budget"
                break
            next_pc = result.next_pc
            successors = out_links.get(entry)
            successor = (successors.get(next_pc)
                         if successors is not None else None)
            if successor is None:
                successor_block = raw_blocks.get(next_pc)
                if successor_block is None:
                    reason = "miss"
                    break
                successor = self._link_successor(entry, next_pc,
                                                 successor_block)
            if self.traces is not None and next_pc <= entry:
                # Backward-edge target: the same trace-head heuristic
                # the fused walk applies inside ``run_traced_chain``.
                # Without it heads only count once per chain walk and
                # never reach the hot threshold, so recording (and the
                # dbt.trace.* counters) would go dark the moment an
                # observer or supervisor switches dispatch to this loop.
                self.traces.observe(next_pc)
            block = successor.block

        system.blocks_executed = blocks_executed
        stats.dispatches += dispatches
        stats.breaks[reason] = stats.breaks.get(reason, 0) + 1
        if observer is not None:
            # The fused fast path never runs with an observer attached
            # (see ``dispatch``), so this is the only place chained runs
            # surface in traces: one chain-level span grouping the
            # per-block spans the core emitted, with the block count and
            # break reason as args.
            observer.chain_dispatch(dispatches, reason, chain_start_cycle,
                                    core.cycle)
        return result
