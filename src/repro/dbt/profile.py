"""Execution profiling for the DBT engine.

The DBT engine profiles the running program to find hot code and to learn
branch biases (paper Section III-A: "the execution is profiled, and the
outcome of frequently executed branches is collected").  The platform
reports every block execution and every traversed control-flow edge; the
profile answers two questions:

* is the block at address X hot enough to be worth optimizing?
* which direction does the branch at address Y usually go, and how
  strongly biased is it?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass
class BranchProfile:
    """Outcome counters of one conditional branch."""

    taken: int = 0
    not_taken: int = 0

    @property
    def total(self) -> int:
        return self.taken + self.not_taken

    @property
    def bias(self) -> float:
        """Probability of the dominant direction (0.5 .. 1.0)."""
        if not self.total:
            return 0.5
        return max(self.taken, self.not_taken) / self.total

    @property
    def predicted_taken(self) -> bool:
        return self.taken >= self.not_taken


class ExecutionProfile:
    """Aggregated execution/branch profile."""

    def __init__(self) -> None:
        self._block_counts: Dict[int, int] = {}
        self._branches: Dict[int, BranchProfile] = {}

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------

    def record_block(self, entry: int) -> int:
        """Count one execution of the block at ``entry``; returns the new
        count (the engine compares it against its hotness threshold)."""
        count = self._block_counts.get(entry, 0) + 1
        self._block_counts[entry] = count
        return count

    def record_branch(self, address: int, taken: bool) -> None:
        """Record one outcome of the conditional branch at ``address``."""
        profile = self._branches.get(address)
        if profile is None:
            profile = BranchProfile()
            self._branches[address] = profile
        if taken:
            profile.taken += 1
        else:
            profile.not_taken += 1

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def block_count(self, entry: int) -> int:
        return self._block_counts.get(entry, 0)

    def branch(self, address: int) -> Optional[BranchProfile]:
        return self._branches.get(address)

    def predicted_direction(
        self, address: int, min_samples: int, min_bias: float,
    ) -> Optional[bool]:
        """Predicted direction of the branch at ``address`` (True = taken),
        or ``None`` when the profile is too weak to justify speculation."""
        profile = self._branches.get(address)
        if profile is None or profile.total < min_samples:
            return None
        if profile.bias < min_bias:
            return None
        return profile.predicted_taken

    def hottest_blocks(self, limit: int = 10) -> Tuple[Tuple[int, int], ...]:
        """(entry, count) pairs of the most-executed blocks."""
        ranked = sorted(self._block_counts.items(), key=lambda kv: -kv[1])
        return tuple(ranked[:limit])

    def reset(self) -> None:
        self._block_counts.clear()
        self._branches.clear()
