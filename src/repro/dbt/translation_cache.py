"""Translation cache: guest entry address -> translated block.

The software analogue of Hybrid-DBT's code memory.  First-pass
translations can later be *replaced* by optimized superblocks for the
same entry; the cache keeps both generations' statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional

from ..vliw.block import TranslatedBlock


@dataclass
class TranslationCacheStats:
    """Lookup and installation counters."""

    lookups: int = 0
    misses: int = 0
    installs: int = 0
    replacements: int = 0
    #: Whole-cache flushes forced by the capacity limit.
    capacity_flushes: int = 0

    @property
    def hit_rate(self) -> float:
        return (self.lookups - self.misses) / self.lookups if self.lookups else 0.0


class TranslationCache:
    """Address-keyed store of translated blocks.

    ``capacity`` bounds the number of cached translations, modelling the
    fixed code-cache memory of a real DBT.  Like most production DBTs
    (which avoid the bookkeeping of partial eviction), hitting the limit
    flushes the whole cache; hot code simply retranslates.
    """

    def __init__(self, capacity: Optional[int] = None,
                 finalizer: Optional[Callable[[TranslatedBlock], object]] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("translation cache capacity must be positive")
        self.capacity = capacity
        #: Optional lowering hook run once per installed block — the DBT
        #: engine points this at :func:`repro.vliw.fastpath.finalize_block`
        #: so translations are pre-decoded for the core's fast path at
        #: install time instead of on first execution.
        self.finalizer = finalizer
        self._blocks: Dict[int, TranslatedBlock] = {}
        self.stats = TranslationCacheStats()

    def lookup(self, entry: int) -> Optional[TranslatedBlock]:
        self.stats.lookups += 1
        block = self._blocks.get(entry)
        if block is None:
            self.stats.misses += 1
        return block

    def install(self, block: TranslatedBlock) -> None:
        if block.guest_entry in self._blocks:
            self.stats.replacements += 1
        elif self.capacity is not None and len(self._blocks) >= self.capacity:
            self._blocks.clear()
            self.stats.capacity_flushes += 1
        self.stats.installs += 1
        if self.finalizer is not None:
            self.finalizer(block)
        self._blocks[block.guest_entry] = block

    def get(self, entry: int) -> Optional[TranslatedBlock]:
        """Untracked lookup (inspection)."""
        return self._blocks.get(entry)

    def invalidate(self, entry: int) -> bool:
        """Drop one translation; returns whether it existed."""
        return self._blocks.pop(entry, None) is not None

    def clear(self) -> None:
        self._blocks.clear()

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, entry: int) -> bool:
        return entry in self._blocks

    def blocks(self) -> Iterator[TranslatedBlock]:
        return iter(self._blocks.values())
