"""Translation cache: guest entry address -> translated block.

The software analogue of Hybrid-DBT's code memory.  First-pass
translations can later be *replaced* by optimized superblocks for the
same entry; the cache keeps both generations' statistics.

Two capacity policies are supported when ``capacity`` is set:

* ``"flush"`` (default, the seed behavior) — a full cache is flushed
  wholesale, as classic DBT code caches are;
* ``"lru"`` — tiered partial eviction: the least-recently-used
  translation is dropped to make room, so long-running guests stop
  losing every hot superblock at once.  Recency is refreshed on every
  lookup and install; the chained dispatcher mirrors the refresh per
  dispatched block so eviction order is identical with chaining on.

The cache is also the synchronization point for block chaining: when a
:class:`~repro.dbt.chaining.ChainIndex` is attached (``self.chains``),
every mutation — replacement installs, invalidations, LRU evictions,
wholesale flushes, ``clear()`` — severs the affected chain links before
the translation goes away, so a chained dispatcher can never jump to a
dropped block.  ``evict_listeners``/``flush_listeners`` let the engine
and the supervisor scope their per-entry bookkeeping to the cache's
actual contents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from ..vliw.block import TranslatedBlock

_CAPACITY_POLICIES = ("flush", "lru")


@dataclass
class TranslationCacheStats:
    """Lookup and installation counters."""

    lookups: int = 0
    misses: int = 0
    installs: int = 0
    replacements: int = 0
    #: Whole-cache flushes forced by the capacity limit (policy "flush").
    capacity_flushes: int = 0
    #: Single-translation LRU evictions (policy "lru").
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return (self.lookups - self.misses) / self.lookups if self.lookups else 0.0


class TranslationCache:
    """Address-keyed store of translated blocks.

    ``capacity`` bounds the number of cached translations, modelling the
    fixed code-cache memory of a real DBT; ``capacity_policy`` selects
    what happens when the limit is hit (see the module docstring).
    """

    def __init__(self, capacity: Optional[int] = None,
                 finalizer: Optional[Callable[[TranslatedBlock], object]] = None,
                 capacity_policy: str = "flush") -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("translation cache capacity must be positive")
        if capacity_policy not in _CAPACITY_POLICIES:
            raise ValueError(
                "capacity_policy must be one of %r, got %r"
                % (_CAPACITY_POLICIES, capacity_policy))
        self.capacity = capacity
        self.capacity_policy = capacity_policy
        self._lru = capacity_policy == "lru"
        #: Optional lowering hook run once per installed block — the DBT
        #: engine points this at :func:`repro.vliw.fastpath.finalize_block`
        #: so translations are pre-decoded for the core's fast path at
        #: install time instead of on first execution.
        self.finalizer = finalizer
        self._blocks: Dict[int, TranslatedBlock] = {}
        self.stats = TranslationCacheStats()
        #: Optional :class:`~repro.dbt.chaining.ChainIndex`; every cache
        #: mutation unlinks through it (set by the engine when chaining
        #: is enabled).
        self.chains = None
        #: Called with the evicted entry on each LRU eviction.
        self.evict_listeners: List[Callable[[int], None]] = []
        #: Called (no arguments) on each wholesale capacity flush.
        self.flush_listeners: List[Callable[[], None]] = []

    def lookup(self, entry: int) -> Optional[TranslatedBlock]:
        self.stats.lookups += 1
        block = self._blocks.get(entry)
        if block is None:
            self.stats.misses += 1
        elif self._lru:
            # Refresh recency: dict insertion order is the LRU order.
            del self._blocks[entry]
            self._blocks[entry] = block
        return block

    def install(self, block: TranslatedBlock) -> None:
        entry = block.guest_entry
        if entry in self._blocks:
            self.stats.replacements += 1
            if self.chains is not None:
                self.chains.unlink(entry)
            if self._lru:
                del self._blocks[entry]  # reinstall below at MRU position
        elif self.capacity is not None and len(self._blocks) >= self.capacity:
            if self._lru:
                victim = next(iter(self._blocks))
                del self._blocks[victim]
                self.stats.evictions += 1
                if self.chains is not None:
                    self.chains.unlink(victim)
                for listener in self.evict_listeners:
                    listener(victim)
            else:
                self._blocks.clear()
                self.stats.capacity_flushes += 1
                if self.chains is not None:
                    self.chains.clear()
                for listener in self.flush_listeners:
                    listener()
        self.stats.installs += 1
        if self.finalizer is not None:
            self.finalizer(block)
        self._blocks[entry] = block

    def get(self, entry: int) -> Optional[TranslatedBlock]:
        """Untracked lookup (inspection)."""
        return self._blocks.get(entry)

    def invalidate(self, entry: int) -> bool:
        """Drop one translation; returns whether it existed.

        Quarantines come through here, so the entry's chain links go
        with it.
        """
        existed = self._blocks.pop(entry, None) is not None
        if existed and self.chains is not None:
            self.chains.unlink(entry)
        return existed

    def clear(self) -> None:
        self._blocks.clear()
        if self.chains is not None:
            self.chains.clear()

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, entry: int) -> bool:
        return entry in self._blocks

    def blocks(self) -> Iterator[TranslatedBlock]:
        return iter(self._blocks.values())
