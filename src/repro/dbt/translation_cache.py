"""Translation cache: guest entry address -> translated block.

The software analogue of Hybrid-DBT's code memory.  First-pass
translations can later be *replaced* by optimized superblocks for the
same entry; the cache keeps both generations' statistics.

Two capacity policies are supported when ``capacity`` is set:

* ``"flush"`` (default, the seed behavior) — a full cache is flushed
  wholesale, as classic DBT code caches are;
* ``"lru"`` — tiered partial eviction: the least-recently-used
  translation is dropped to make room, so long-running guests stop
  losing every hot superblock at once.  Recency is refreshed on every
  lookup and install; the chained dispatcher mirrors the refresh per
  dispatched block so eviction order is identical with chaining on.

The cache is also the synchronization point for block chaining: when a
:class:`~repro.dbt.chaining.ChainIndex` is attached (``self.chains``),
every mutation — replacement installs, invalidations, LRU evictions,
wholesale flushes, ``clear()`` — severs the affected chain links before
the translation goes away, so a chained dispatcher can never jump to a
dropped block.  ``evict_listeners``/``flush_listeners`` let the engine
and the supervisor scope their per-entry bookkeeping to the cache's
actual contents.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import marshal
import os
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..ioatomic import atomic_write_text
from ..vliw.block import TranslatedBlock

_CAPACITY_POLICIES = ("flush", "lru")


@dataclass
class TranslationCacheStats:
    """Lookup and installation counters."""

    lookups: int = 0
    misses: int = 0
    installs: int = 0
    replacements: int = 0
    #: Whole-cache flushes forced by the capacity limit (policy "flush").
    capacity_flushes: int = 0
    #: Single-translation LRU evictions (policy "lru").
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return (self.lookups - self.misses) / self.lookups if self.lookups else 0.0


class TranslationCache:
    """Address-keyed store of translated blocks.

    ``capacity`` bounds the number of cached translations, modelling the
    fixed code-cache memory of a real DBT; ``capacity_policy`` selects
    what happens when the limit is hit (see the module docstring).
    """

    def __init__(self, capacity: Optional[int] = None,
                 finalizer: Optional[Callable[[TranslatedBlock], object]] = None,
                 capacity_policy: str = "flush") -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("translation cache capacity must be positive")
        if capacity_policy not in _CAPACITY_POLICIES:
            raise ValueError(
                "capacity_policy must be one of %r, got %r"
                % (_CAPACITY_POLICIES, capacity_policy))
        self.capacity = capacity
        self.capacity_policy = capacity_policy
        self._lru = capacity_policy == "lru"
        #: Optional lowering hook run once per installed block — the DBT
        #: engine points this at :func:`repro.vliw.fastpath.finalize_block`
        #: so translations are pre-decoded for the core's fast path at
        #: install time instead of on first execution.
        self.finalizer = finalizer
        #: Optional :class:`PersistentCodegenCache`; when set, dropping a
        #: translation also discards its persisted compiled code, so the
        #: on-disk cache can never serve an entry the in-memory cache
        #: already rejected (eviction/invalidation parity).
        self.persistent: Optional["PersistentCodegenCache"] = None
        self._blocks: Dict[int, TranslatedBlock] = {}
        self.stats = TranslationCacheStats()
        #: Optional :class:`~repro.dbt.chaining.ChainIndex`; every cache
        #: mutation unlinks through it (set by the engine when chaining
        #: is enabled).
        self.chains = None
        #: Optional :class:`~repro.dbt.traces.TraceManager`; every cache
        #: mutation retires the megablocks covering the touched entry
        #: (set by the system when the trace tier is selected), with the
        #: same synchronicity as chain unlinking — a megablock must
        #: never survive a constituent translation.
        self.traces = None
        #: Called with the evicted entry on each LRU eviction.
        self.evict_listeners: List[Callable[[int], None]] = []
        #: Called (no arguments) on each wholesale capacity flush.
        self.flush_listeners: List[Callable[[], None]] = []

    def lookup(self, entry: int) -> Optional[TranslatedBlock]:
        self.stats.lookups += 1
        block = self._blocks.get(entry)
        if block is None:
            self.stats.misses += 1
        elif self._lru:
            # Refresh recency: dict insertion order is the LRU order.
            del self._blocks[entry]
            self._blocks[entry] = block
        return block

    def install(self, block: TranslatedBlock) -> None:
        entry = block.guest_entry
        if entry in self._blocks:
            self.stats.replacements += 1
            self._forget_compiled(self._blocks[entry])
            if self.chains is not None:
                self.chains.unlink(entry)
            if self.traces is not None:
                self.traces.retire_entry(entry)
            if self._lru:
                del self._blocks[entry]  # reinstall below at MRU position
        elif self.capacity is not None and len(self._blocks) >= self.capacity:
            if self._lru:
                victim = next(iter(self._blocks))
                self._forget_compiled(self._blocks[victim])
                del self._blocks[victim]
                self.stats.evictions += 1
                if self.chains is not None:
                    self.chains.unlink(victim)
                if self.traces is not None:
                    self.traces.retire_entry(victim)
                for listener in self.evict_listeners:
                    listener(victim)
            else:
                for stale in self._blocks.values():
                    self._forget_compiled(stale)
                self._blocks.clear()
                self.stats.capacity_flushes += 1
                if self.chains is not None:
                    self.chains.clear()
                if self.traces is not None:
                    self.traces.clear()
                for listener in self.flush_listeners:
                    listener()
        self.stats.installs += 1
        if self.finalizer is not None:
            self.finalizer(block)
        self._blocks[entry] = block

    def get(self, entry: int) -> Optional[TranslatedBlock]:
        """Untracked lookup (inspection)."""
        return self._blocks.get(entry)

    def invalidate(self, entry: int) -> bool:
        """Drop one translation; returns whether it existed.

        Quarantines come through here, so the entry's chain links go
        with it.
        """
        dropped = self._blocks.pop(entry, None)
        existed = dropped is not None
        if existed:
            self._forget_compiled(dropped)
            if self.chains is not None:
                self.chains.unlink(entry)
            if self.traces is not None:
                self.traces.retire_entry(entry)
        return existed

    def clear(self) -> None:
        for block in self._blocks.values():
            self._forget_compiled(block)
        self._blocks.clear()
        if self.chains is not None:
            self.chains.clear()
        if self.traces is not None:
            self.traces.clear()

    def _forget_compiled(self, block: TranslatedBlock) -> None:
        """Tier-3 eviction parity: a translation leaving the cache takes
        its compiled host function — and the persisted envelope that
        could resurrect it in another process — with it, exactly as its
        chain links go.  The recovery variant's compiled form is part of
        the translation and goes too."""
        fblock = getattr(block, "_finalized", None)
        while fblock is not None:
            fblock.compiled = None
            key = fblock.persist_key
            fblock.persist_key = None
            if key is not None and self.persistent is not None:
                self.persistent.discard(key)
            fblock = fblock.recovery

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, entry: int) -> bool:
        return entry in self._blocks

    def blocks(self) -> Iterator[TranslatedBlock]:
        return iter(self._blocks.values())


# ---------------------------------------------------------------------------
# Persistent cross-process codegen cache (tier-3).
# ---------------------------------------------------------------------------

#: Envelope format version; part of the on-disk schema, independent of
#: the codegen key version (which already covers generator + bytecode
#: compatibility).
_ENVELOPE_VERSION = 1

#: Process-wide memo of unmarshalled code objects, keyed by envelope
#: path.  Cache *instances* are per-system and come and go with every
#: experiment point, while the envelopes they share are immutable on
#: disk — so re-reading, re-checksumming and re-unmarshalling them for
#: every system in a long campaign is pure waste (it used to dominate
#: the warm-tcache wall).  Each entry carries the file's
#: ``(mtime_ns, size)`` fingerprint and a hit revalidates it with one
#: ``stat``: any rewrite — including the chaos matrix's bit flips —
#: changes the fingerprint and forces the full validating disk read,
#: so corruption detection is exactly as strong as without the memo.
_PROCESS_MEMO: "OrderedDict[str, Tuple[Tuple[int, int], object]]" = (
    OrderedDict())
_PROCESS_MEMO_LIMIT = 4096


def _process_memo_put(path: Path, code) -> None:
    try:
        stat = path.stat()
    except OSError:
        return
    _PROCESS_MEMO[str(path)] = ((stat.st_mtime_ns, stat.st_size), code)
    _PROCESS_MEMO.move_to_end(str(path))
    while len(_PROCESS_MEMO) > _PROCESS_MEMO_LIMIT:
        _PROCESS_MEMO.popitem(last=False)


def _process_memo_get(path: Path):
    """The memoized code object for ``path``, or ``None`` when absent
    or when the file on disk no longer matches the fingerprint."""
    entry = _PROCESS_MEMO.get(str(path))
    if entry is None:
        return None
    try:
        stat = path.stat()
    except OSError:
        _PROCESS_MEMO.pop(str(path), None)
        return None
    if entry[0] != (stat.st_mtime_ns, stat.st_size):
        _PROCESS_MEMO.pop(str(path), None)
        return None
    _PROCESS_MEMO.move_to_end(str(path))
    return entry[1]


def clear_process_memo() -> None:
    """Drop every process-memoized envelope (tests simulating a fresh
    process)."""
    _PROCESS_MEMO.clear()


@dataclass(frozen=True, slots=True)
class CodegenCacheEnvelope:
    """One persisted compiled block: versioned, checksummed, keyed.

    ``code`` is the base64 of ``marshal.dumps`` of the module code
    object; ``sha256`` covers the raw marshal bytes so truncation or
    bit-flips are detected before ``marshal.loads`` ever runs.
    """

    version: int
    key: str
    sha256: str
    code: str
    source_bytes: int

    def to_json(self) -> str:
        return json.dumps({
            "version": self.version,
            "key": self.key,
            "sha256": self.sha256,
            "code": self.code,
            "source_bytes": self.source_bytes,
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CodegenCacheEnvelope":
        record = json.loads(text)
        if not isinstance(record, dict):
            raise ValueError("envelope is not an object")
        return cls(
            version=record["version"],
            key=record["key"],
            sha256=record["sha256"],
            code=record["code"],
            source_bytes=record["source_bytes"],
        )


class PersistentCodegenCache:
    """On-disk store of compiled-block code objects, shared across
    processes (``--tcache-dir``).

    Corruption-tolerant like the sweep memo cache
    (:mod:`repro.platform.parallel`): an unreadable, truncated,
    version-mismatched or checksum-failing envelope is moved into a
    ``quarantine/`` subdirectory — never deleted, so operators can
    inspect what went wrong — counted, and recomputed.  Writes are
    atomic (temp file + ``os.replace``) so a killed worker can never
    leave a half-written envelope for the next one.

    A small in-process memo layer fronts the disk so repeated installs
    of the same translation inside one process (capacity flushes,
    replacement churn) do not re-read files.
    """

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Envelopes loaded (disk or memo).
        self.loads = 0
        #: Envelopes written.
        self.stores = 0
        #: Corrupt envelopes moved to ``quarantine/``.
        self.quarantined = 0
        self._memory: Dict[str, object] = {}

    def _path(self, key: str) -> Path:
        return self.directory / (key + ".codegen.json")

    def load(self, key: str):
        """The code object persisted under ``key``, or ``None``."""
        code = self._memory.get(key)
        if code is not None:
            self.loads += 1
            return code
        path = self._path(key)
        code = _process_memo_get(path)
        if code is not None:
            self._memory[key] = code
            self.loads += 1
            return code
        try:
            text = path.read_text()
        except OSError:
            return None
        except UnicodeDecodeError as error:
            # A bit-flip can break UTF-8 before it breaks JSON.
            self._quarantine(path, error)
            return None
        try:
            envelope = CodegenCacheEnvelope.from_json(text)
            if envelope.version != _ENVELOPE_VERSION:
                raise ValueError("envelope version %r" % (envelope.version,))
            if envelope.key != key:
                raise ValueError("envelope key mismatch")
            raw = base64.b64decode(envelope.code.encode("ascii"),
                                   validate=True)
            if hashlib.sha256(raw).hexdigest() != envelope.sha256:
                raise ValueError("envelope checksum mismatch")
            code = marshal.loads(raw)
        except (ValueError, KeyError, TypeError, EOFError,
                binascii.Error) as error:
            self._quarantine(path, error)
            return None
        self._memory[key] = code
        _process_memo_put(path, code)
        self.loads += 1
        return code

    def store(self, key: str, code, source_bytes: int) -> None:
        """Persist ``code`` under ``key`` (atomic)."""
        raw = marshal.dumps(code)
        envelope = CodegenCacheEnvelope(
            version=_ENVELOPE_VERSION,
            key=key,
            sha256=hashlib.sha256(raw).hexdigest(),
            code=base64.b64encode(raw).decode("ascii"),
            source_bytes=source_bytes,
        )
        path = self._path(key)
        try:
            # Unique temp + fsync + os.replace: parallel sweep workers
            # share --tcache-dir by design, and a fixed temp name would
            # let two of them interleave into one file and publish a
            # torn envelope (quarantined as rot on every later load).
            atomic_write_text(path, envelope.to_json() + "\n")
        except OSError:
            # Persistence is an optimization; a read-only or full disk
            # must never fail the run.
            return
        self._memory[key] = code
        _process_memo_put(path, code)
        self.stores += 1

    def discard(self, key: str) -> None:
        """Drop ``key``'s envelope (eviction/invalidation parity)."""
        self._memory.pop(key, None)
        _PROCESS_MEMO.pop(str(self._path(key)), None)
        try:
            self._path(key).unlink()
        except OSError:
            pass

    def _quarantine(self, path: Path, error: BaseException) -> None:
        """Move a corrupt envelope aside (mirrors the sweep memo
        cache's quarantine) and count it for the chaos matrix."""
        self.quarantined += 1
        quarantine_dir = self.directory / "quarantine"
        try:
            quarantine_dir.mkdir(exist_ok=True)
            os.replace(path, quarantine_dir / path.name)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
