"""Asynchronous host compilation and profile-driven tier placement.

Tier-3/4 host codegen costs real wall time (BENCH_host measured ~3.7ms
per block), and the seed wiring paid it *inline*: install-time
``ensure_compiled`` stalls the engine, which is why the compiled tier
used to lose to the fast interpreter on every Polybench kernel — most
blocks never ran often enough to amortize their compile.

This module fixes both halves of that trade:

* :class:`CompileQueue` moves codegen off the engine's critical path.
  Jobs run on a background thread (or inline, in the deterministic
  modes) and their results are *applied* only at a *safe point* —
  :meth:`CompileQueue.drain`, called by ``DbtSystem.run`` between block
  dispatches — so a compiled form can never swap in mid-dispatch.
  Until the swap, execution proceeds on the fast interpreter with
  **bit-identical** simulated results (the compiled tier's contract),
  so compile *timing* can never change an experiment.
* :class:`TierController` decides *what* deserves compiling: instead of
  compiling every optimized translation at install, it watches the
  execution profile and promotes a block only after it has proven it
  will amortize the compile (``min_executions``).  Small kernels
  therefore stay on the fast interpreter automatically — no manual
  ``--interpreter`` choice needed (``DbtEngineConfig.tier_mode="auto"``).

Queue modes (all with the same observable contract):

* ``"thread"`` — a daemon worker compiles in the background;
* ``"sync"``   — compile and apply at submit (eager tiers, the seed
  behavior for ``tier_mode="eager"``);
* ``"manual"`` — jobs wait until :meth:`CompileQueue.pump` runs them;
  tests use this to force compilation to finish before, during, or
  after a trace goes hot and assert the results are identical.
"""

from __future__ import annotations

import atexit
import threading
import weakref
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

_QUEUE_MODES = ("thread", "sync", "manual")

#: Every queue that may own a live worker thread.  ``DbtSystem.run``
#: closes its queue in a ``finally``, but a queue driven directly, or a
#: run torn down before that ``finally``, used to leave the lazily
#: started ``repro-compile`` daemon thread alive at interpreter exit —
#: where it could touch half-torn-down module state.  The atexit hook
#: joins whatever is left.  WeakSet, so the net never keeps a dead
#: queue (or anything it references) alive.
_LIVE_QUEUES: "weakref.WeakSet[CompileQueue]" = weakref.WeakSet()


@atexit.register
def _close_live_queues() -> None:
    for queue in list(_LIVE_QUEUES):
        try:
            queue.close(timeout=1.0)
        except Exception:  # noqa: BLE001 — exit path must not raise
            pass


@dataclass
class CompileQueueStats:
    """Lifetime counters of one compile queue."""

    #: Jobs submitted.
    submitted: int = 0
    #: Jobs whose work function finished (successfully or not).
    completed: int = 0
    #: Results applied at a safe point.
    applied: int = 0
    #: Jobs whose work function raised (the artifact is dropped and the
    #: engine keeps running on the lower tier).
    failures: int = 0
    #: Jobs still unfinished when the queue closed (includes every job
    #: wedged behind a hung worker).
    stalled: int = 0


class _Job:
    __slots__ = ("label", "work", "apply", "artifact", "error")

    def __init__(self, label: str, work: Callable, apply: Callable):
        self.label = label
        self.work = work
        self.apply = apply
        self.artifact = None
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            self.artifact = self.work()
        except BaseException as error:  # noqa: BLE001 - isolated worker
            self.error = error


class CompileQueue:
    """Background host-codegen queue with safe-point application."""

    def __init__(self, mode: str = "thread", injector=None):
        if mode not in _QUEUE_MODES:
            raise ValueError("compile queue mode must be one of %r, got %r"
                             % (_QUEUE_MODES, mode))
        self.mode = mode
        #: Optional :class:`~repro.resilience.faults.FaultInjector`;
        #: the COMPILE_QUEUE_HANG site wedges the worker so the chaos
        #: matrix can assert the engine survives on the lower tiers.
        self.injector = injector
        self.stats = CompileQueueStats()
        #: True once a fault injection wedged the worker: submitted jobs
        #: are accepted but never completed.
        self.hung = False
        self._pending: deque = deque()
        self._done: deque = deque()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        #: Started lazily on the first submitted job: a run whose tier
        #: controller declines every promotion (small kernels under
        #: ``tier_mode="auto"``) never pays thread startup or switches.
        self._worker: Optional[threading.Thread] = None
        _LIVE_QUEUES.add(self)

    # -- submission ----------------------------------------------------

    def submit(self, label: str, work: Callable, apply: Callable) -> None:
        """Queue ``work`` (runs off the critical path, returns an
        artifact); ``apply(artifact, error)`` runs on the engine thread
        at the next safe point."""
        self.stats.submitted += 1
        injector = self.injector
        if (not self.hung and injector is not None and injector.armed
                and injector.should_fire(_hang_site())):
            injector.record(_hang_site(), "compile queue wedged at %r"
                            % (label,))
            self.hung = True
        job = _Job(label, work, apply)
        if self.mode == "sync" and not self.hung:
            job.run()
            self._finish(job)
            self._apply(job)
            return
        if self.mode == "thread" and self._worker is None and not self.hung:
            self._worker = threading.Thread(
                target=self._worker_loop, name="repro-compile", daemon=True)
            self._worker.start()
        with self._lock:
            self._pending.append(job)
            self._wakeup.notify()

    # -- completion ----------------------------------------------------

    def _finish(self, job: _Job) -> None:
        self.stats.completed += 1
        if job.error is not None:
            self.stats.failures += 1

    def _apply(self, job: _Job) -> None:
        self.stats.applied += 1
        job.apply(job.artifact, job.error)

    def pump(self, limit: Optional[int] = None) -> int:
        """Run pending jobs inline (mode ``"manual"``; also usable in
        ``"thread"`` mode from tests).  Returns the number run."""
        ran = 0
        while limit is None or ran < limit:
            with self._lock:
                if self.hung or not self._pending:
                    break
                job = self._pending.popleft()
            job.run()
            self._finish(job)
            with self._lock:
                self._done.append(job)
            ran += 1
        return ran

    def drain(self) -> int:
        """Apply every finished job's result (safe point; engine
        thread).  Returns the number applied."""
        # Lock-free empty check: this runs between every block dispatch,
        # and a result appended concurrently is simply applied at the
        # next safe point instead of this one.
        if not self._done:
            return 0
        applied = 0
        while True:
            with self._lock:
                if not self._done:
                    break
                job = self._done.popleft()
            self._apply(job)
            applied += 1
        return applied

    def idle(self) -> bool:
        """Whether no job is pending or awaiting application."""
        with self._lock:
            return not self._pending and not self._done

    def close(self, timeout: float = 5.0) -> None:
        """Stop the worker, apply what finished, count the rest as
        stalled."""
        _LIVE_QUEUES.discard(self)
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._wakeup.notify_all()
        if self._worker is not None and not self.hung:
            self._worker.join(timeout)
        self.drain()
        with self._lock:
            self.stats.stalled += len(self._pending)
            self._pending.clear()

    # -- worker --------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._pending and not self._closed:
                    self._wakeup.wait()
                if self.hung or (self._closed and not self._pending):
                    return
                job = self._pending.popleft()
            job.run()
            with self._lock:
                if self.hung:
                    # Wedged mid-job: the result must never surface.
                    self._pending.appendleft(job)
                    return
                self._done.append(job)
            self._finish(job)


def _hang_site():
    from ..resilience.faults import FaultSite

    return FaultSite.COMPILE_QUEUE_HANG


@dataclass
class TierStats:
    """Lifetime counters of the automatic tier controller."""

    #: Translations registered as compile candidates.
    candidates: int = 0
    #: Candidates promoted (compile job submitted).
    promotions: int = 0
    #: Candidates still uncompiled at run end (never got hot enough —
    #: they ran on the fast interpreter, by design).
    declined: int = 0


class TierController:
    """Profile-driven promotion of translations to the compiled tier.

    Active with ``DbtEngineConfig.tier_mode="auto"``: the install-time
    finalizer only lowers to the fast path; this controller watches
    ``engine.profile`` and submits a compile job once a block's
    execution count shows the compile will amortize.  ``poll()`` is
    called from the run loop and rate-limits itself, so the per-dispatch
    cost is one counter increment.
    """

    #: Dispatches between profile scans.
    POLL_INTERVAL = 64

    def __init__(self, system, queue: CompileQueue,
                 min_executions: int = 200):
        self.system = system
        self.queue = queue
        self.min_executions = min_executions
        self.stats = TierStats()
        self._candidates: dict = {}
        self._ticks = 0

    def note_install(self, block, fblock) -> None:
        """Register an installed translation as a compile candidate.

        First-pass blocks are never candidates: they are replaced after
        ``hot_threshold`` executions, so their compile cannot amortize.
        """
        if block.kind == "firstpass":
            return
        self.stats.candidates += 1
        self._candidates[block.guest_entry] = (block, fblock)

    def poll(self) -> None:
        self._ticks += 1
        if self._ticks % self.POLL_INTERVAL:
            return
        self.scan()

    def scan(self) -> None:
        """Promote every candidate whose profile crossed the threshold."""
        if not self._candidates:
            return
        counts = self.system.engine.profile._block_counts
        threshold = self.min_executions
        hot = [entry for entry in self._candidates
               if counts.get(entry, 0) >= threshold]
        for entry in hot:
            block, fblock = self._candidates.pop(entry)
            self._promote(entry, block, fblock)

    def _promote(self, entry: int, block, fblock) -> None:
        from ..vliw.codegen import compile_block

        self.stats.promotions += 1
        system = self.system
        stats = system.codegen
        persistent = system.tcache
        policy_key = system.policy.value

        def work():
            fn, key = compile_block(fblock, stats, persistent, policy_key)
            recovery = None
            if fblock.recovery is not None:
                recovery = compile_block(fblock.recovery, stats,
                                         persistent, policy_key)
            return fn, key, recovery

        def apply(artifact, error):
            if error is not None:
                return
            if system.engine.cache.get(entry) is not block:
                return  # replaced/evicted while compiling
            fn, key, recovery = artifact
            if fblock.compiled is None:
                fblock.compiled = fn
                fblock.persist_key = key
            if recovery is not None and fblock.recovery.compiled is None:
                fblock.recovery.compiled = recovery[0]
                fblock.recovery.persist_key = recovery[1]

        self.queue.submit("block:%#x" % entry, work, apply)

    def finish(self) -> None:
        """End-of-run accounting."""
        self.stats.declined += len(self._candidates)
