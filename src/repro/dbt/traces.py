"""Tier-4 trace recording: hot chains become compiled megablocks.

The classic meta-tracing JIT move (Dynamo, QEMU's hot-path work,
PyPy's tracing loop): once a chain head is dispatched often enough, the
:class:`TraceManager` walks the chain index along the *profiled* path —
following unconditional links and conditional branches whose recorded
bias is strong — and records a **trace**: a fixed block sequence, at
most :attr:`TraceConfig.max_blocks` long, possibly closing a loop back
to its own head.  The trace is compiled (off the critical path, through
the :class:`~repro.dbt.tiering.CompileQueue`) into one **megablock**
driver by :func:`repro.vliw.codegen.compile_trace`: the constituent
compiled block bodies called back-to-back with the successor dispatch
baked in, and a **guard** wherever the recorded path could diverge.

A guard failure (or a rollback / syscall / budget break — exactly the
existing chain-break reasons) side-exits back to the dispatcher, which
resumes the ordinary per-block chain walk at the divergent block.
Because every megablock step replicates the per-block profiling seam
verbatim, simulated observables — cycles, profile counts, branch
outcomes, LRU recency, translation order — stay bit-identical to the
per-block tiers under every mitigation policy
(``tests/platform/test_fastpath_differential.py`` gates the four-way
equivalence).

Cost/benefit accounting both ways:

* **promote** — only chain heads dispatched ``hot_threshold`` times are
  recorded, and only paths the branch profile supports;
* **demote** — a megablock whose guards fail too often (average blocks
  per dispatch below :attr:`TraceConfig.demote_min_avg_blocks` over a
  :attr:`TraceConfig.demote_window`) is retired and its head
  blacklisted, so a mispredicted trace cannot keep paying guard-exit
  overhead.

Cache parity: every translation-cache mutation that touches a
constituent block retires the covering megablock *and its persisted
envelope* through :meth:`TraceManager.retire_entry` /
:meth:`TraceManager.clear` — the same synchronous hooks chain links die
by, so a megablock can never execute a replaced translation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from ..vliw.codegen import compile_trace, ensure_compiled
from ..vliw.fastpath import finalize_block
from ..vliw.pipeline import MegablockCorruptError


@dataclass
class TraceConfig:
    """Trace recorder / tier-placement tunables (host-side only: none of
    these can change a simulated observable)."""

    #: Fused dispatches of a chain head before a trace is recorded.
    hot_threshold: int = 8
    #: Maximum blocks inlined into one megablock.
    max_blocks: int = 16
    #: Minimum blocks for a non-loop trace to be worth compiling.
    min_blocks: int = 2
    #: Branch-profile strength needed to follow a conditional edge.
    branch_min_samples: int = 8
    branch_min_bias: float = 0.75
    #: Dispatches before a megablock's guard-failure rate is judged.
    demote_window: int = 16
    #: Minimum average blocks per dispatch to stay compiled.
    demote_min_avg_blocks: float = 2.0


@dataclass
class TraceStats:
    """Lifetime counters of one trace manager (``dbt.trace.*`` gauges)."""

    #: Traces recorded (compile submitted).
    recorded: int = 0
    #: Megablocks installed (compile applied).
    compiled: int = 0
    #: Megablock drivers served from the persistent cache.
    persist_hits: int = 0
    #: Megablock executions.
    dispatches: int = 0
    #: Blocks executed inside megablocks.
    blocks: int = 0
    #: Megablock exits by kind (side_exit / trace_end / loop_exit /
    #: rollback / syscall / budget).
    guard_exits: Dict[str, int] = field(default_factory=dict)
    #: Megablocks demoted for excessive guard failures.
    demotions: int = 0
    #: Megablocks retired by cache mutations (eviction parity).
    retired: int = 0
    #: Megablocks retired after an integrity failure (fault injection).
    corrupt_retired: int = 0
    #: Traces dropped at apply time (a constituent died mid-compile).
    stale_drops: int = 0
    #: Background wall time spent compiling traces (honest Amdahl
    #: accounting: this is host time the engine did NOT stall for).
    compile_seconds: float = 0.0


class Megablock:
    """One installed trace: the compiled driver plus its bookkeeping."""

    __slots__ = ("head", "steps", "loop", "fn", "persist_key",
                 "dispatches", "blocks", "compile_seconds")

    def __init__(self, head: int, steps: Tuple, loop: bool,
                 fn, persist_key: Optional[str],
                 compile_seconds: float = 0.0):
        self.head = head
        self.steps = steps
        self.loop = loop
        self.fn = fn
        self.persist_key = persist_key
        self.dispatches = 0
        self.blocks = 0
        self.compile_seconds = compile_seconds


class TraceManager:
    """Records, installs, accounts and retires megablocks for one
    system.  Created by ``DbtSystem`` when the trace tier is selected
    (``interpreter="trace"`` with chaining on)."""

    def __init__(self, system, queue, config: Optional[TraceConfig] = None):
        self.system = system
        self.engine = system.engine
        self.chains = system.engine.chains
        self.queue = queue
        self.config = config if config is not None else TraceConfig()
        self.stats = TraceStats()
        #: Optional :class:`~repro.resilience.faults.FaultInjector` for
        #: the TRACE_GUARD_CORRUPT site (set by the chaos matrix).
        self.injector = None
        self._megablocks: Dict[int, Megablock] = {}
        #: constituent entry -> heads of megablocks containing it.
        self._covering: Dict[int, Set[int]] = {}
        #: Fused dispatch counts per chain head.
        self._counts: Dict[int, int] = {}
        #: Heads with a compile in flight.
        self._pending: Set[int] = set()
        #: Demoted heads, never re-recorded this run.
        self._blacklist: Set[int] = set()

    # ------------------------------------------------------------------
    # Dispatch-side entry points.
    # ------------------------------------------------------------------

    def visit(self, entry: int) -> None:
        """Count one trace-head visit (a chain-walk start or the target
        of a backward edge — the classic trace-JIT head heuristic) and
        record a trace once the head is hot.  The caller has already
        established no megablock is installed for ``entry``."""
        counts = self._counts
        count = counts.get(entry, 0) + 1
        counts[entry] = count
        if (count >= self.config.hot_threshold
                and entry not in self._pending
                and entry not in self._blacklist):
            self._record(entry)

    def observe(self, entry: int) -> None:
        """General-path twin of :meth:`visit`: counts and compiles, but
        megablocks never *execute* outside the fused path (observer and
        supervisor hooks must keep firing per block)."""
        if entry not in self._megablocks:
            self.visit(entry)

    def note_exit(self, mega: Megablock, kind: str, blocks: int) -> None:
        """Account one megablock execution and apply demotion policy."""
        stats = self.stats
        stats.dispatches += 1
        stats.blocks += blocks
        stats.guard_exits[kind] = stats.guard_exits.get(kind, 0) + 1
        mega.dispatches += 1
        mega.blocks += blocks
        cfg = self.config
        if (mega.dispatches >= cfg.demote_window
                and mega.blocks
                < mega.dispatches * cfg.demote_min_avg_blocks):
            self.demote(mega)

    def demote(self, mega: Megablock, corrupted: bool = False) -> None:
        """Retire ``mega`` and blacklist its head (guards fail too
        often, or its compiled driver failed its integrity check)."""
        stats = self.stats
        stats.demotions += 1
        if corrupted:
            stats.corrupt_retired += 1
        self._blacklist.add(mega.head)
        if self._megablocks.get(mega.head) is mega:
            del self._megablocks[mega.head]
            self._unindex(mega)
        self._emit("trace_demoted", mega.head, len(mega.steps))

    def megablock_rows(self):
        """Per-megablock accounting rows for host profiling reports
        (``repro profile --amortize``).  Sorted hottest-first."""
        rows = []
        for mega in self._megablocks.values():
            rows.append({
                "head": mega.head,
                "steps": len(mega.steps),
                "loop": mega.loop,
                "dispatches": mega.dispatches,
                "blocks": mega.blocks,
                "compile_seconds": mega.compile_seconds,
            })
        rows.sort(key=lambda row: (-row["blocks"], row["head"]))
        return rows

    # ------------------------------------------------------------------
    # Recording and compilation.
    # ------------------------------------------------------------------

    def _record(self, head: int) -> None:
        steps = self._walk(head)
        if steps is None:
            # Not walkable yet (links or branch profile still forming).
            # Reset the visit count so the walk retries after another
            # hot_threshold visits instead of on every visit.
            self._counts[head] = 0
            return
        steps, loop = steps
        self._pending.add(head)
        self.stats.recorded += 1
        self._emit("trace_recorded", head, len(steps))
        system = self.system
        engine = self.engine
        codegen_stats = system.codegen
        persistent = system.tcache
        policy_key = system.policy.value
        vliw_config = system.core.config
        lru = engine.cache._lru
        stats = self.stats

        def work():
            started = time.perf_counter()
            for link in steps:
                fblock = link.fblock
                if fblock is None:
                    fblock = link.fblock = finalize_block(
                        link.block, vliw_config)
                ensure_compiled(fblock, codegen_stats, persistent,
                                policy_key)
            fn, key, persist_hit = compile_trace(
                steps, loop, lru, vliw_config, codegen_stats, persistent,
                policy_key)
            return fn, key, persist_hit, time.perf_counter() - started

        def apply(artifact, error):
            self._pending.discard(head)
            if error is not None:
                return  # stay on the per-block tiers
            fn, key, persist_hit, seconds = artifact
            stats.compile_seconds += seconds
            if persist_hit:
                stats.persist_hits += 1
            records = self.chains.records
            for link in steps:
                if records.get(link.entry) is not link:
                    # A constituent was replaced/evicted mid-compile;
                    # the trace would execute a dead translation.
                    stats.stale_drops += 1
                    if key is not None and persistent is not None:
                        persistent.discard(key)
                    return
            injector = self.injector
            if (injector is not None and injector.armed
                    and injector.should_fire(_corrupt_site())):
                injector.record(_corrupt_site(),
                                "megablock %#x driver corrupted" % head)
                fn = _corrupt_driver(head)
            mega = Megablock(head, steps, loop, fn, key, seconds)
            self._megablocks[head] = mega
            covering = self._covering
            for link in steps:
                heads = covering.get(link.entry)
                if heads is None:
                    heads = covering[link.entry] = set()
                heads.add(head)
            stats.compiled += 1
            self._emit("trace_compiled", head, len(steps))

        self.queue.submit("trace:%#x" % head, work, apply)

    def _walk(self, head: int):
        """Record the profiled path from ``head`` through the chain
        index, or ``None`` when no worthwhile trace exists (yet)."""
        records = self.chains.records
        record = records.get(head)
        if record is None or record.firstpass:
            return None
        cfg = self.config
        steps = [record]
        seen = {head}
        loop = False
        current = record
        while len(steps) < cfg.max_blocks:
            nxt = self._next_step(current, head)
            if nxt is None:
                break
            if nxt.entry == head:
                loop = True
                break
            if nxt.entry in seen or nxt.firstpass:
                break
            steps.append(nxt)
            seen.add(nxt.entry)
            current = nxt
        if not loop and len(steps) < cfg.min_blocks:
            return None
        return tuple(steps), loop

    def _next_step(self, link, head: int):
        """The profiled successor of ``link``, or ``None`` when the
        profile cannot justify baking an edge."""
        out = self.chains._out.get(link.entry)
        if not out:
            return None
        branch = link.branch
        if branch is None:
            # A single observed successor is the whole story.
            if len(out) == 1:
                return next(iter(out.values()))
            # Multi-exit superblock (the deciding conditional lives
            # inside the translated region, so there is no terminator
            # branch profile).  If one observed edge closes the loop
            # back to the trace head, follow it: loop back-edges
            # dominate by construction of hotness, and the megablock's
            # guards plus the demotion policy cover a wrong guess.
            successor = out.get(head)
            if successor is not None:
                return successor
            return None
        cfg = self.config
        direction = self.engine.profile.predicted_direction(
            branch[0], cfg.branch_min_samples, cfg.branch_min_bias)
        if direction is None:
            return None
        if direction:
            return out.get(branch[1])
        fallthrough = [successor for pc, successor in out.items()
                       if pc != branch[1]]
        if len(fallthrough) == 1:
            return fallthrough[0]
        return None

    # ------------------------------------------------------------------
    # Cache-mutation parity.
    # ------------------------------------------------------------------

    def retire_entry(self, entry: int) -> None:
        """A cache mutation dropped ``entry``'s translation: atomically
        retire every megablock containing it (and their envelopes)."""
        heads = self._covering.pop(entry, None)
        if not heads:
            return
        for head in heads:
            mega = self._megablocks.pop(head, None)
            if mega is not None:
                self._retire(mega)

    def clear(self) -> None:
        """Wholesale flush: every megablock dies with the cache."""
        megablocks = list(self._megablocks.values())
        self._megablocks.clear()
        self._covering.clear()
        for mega in megablocks:
            self._discard_envelope(mega)
            self.stats.retired += 1

    def _retire(self, mega: Megablock) -> None:
        self.stats.retired += 1
        self._unindex(mega)
        self._discard_envelope(mega)

    def _unindex(self, mega: Megablock) -> None:
        covering = self._covering
        for link in mega.steps:
            heads = covering.get(link.entry)
            if heads is not None:
                heads.discard(mega.head)
                if not heads:
                    del covering[link.entry]

    def _discard_envelope(self, mega: Megablock) -> None:
        if mega.persist_key is not None:
            persistent = self.system.tcache
            if persistent is not None:
                persistent.discard(mega.persist_key)

    # ------------------------------------------------------------------
    # Observability (general path only; the fused path runs observer-free
    # by definition).
    # ------------------------------------------------------------------

    def _emit(self, name: str, head: int, blocks: int) -> None:
        observer = self.engine.observer
        if observer is not None:
            observer.trace_event(name, head, blocks,
                                 self.system.core.cycle)


def _corrupt_driver(head: int):
    """Fault-injection stand-in for a megablock driver: fails its
    integrity check before touching any state, so the dispatcher can
    retire the trace and re-dispatch down the per-block tiers."""

    def _trace_fn(core, ctx, blocks_executed):
        raise MegablockCorruptError(
            "megablock %#x driver failed integrity check" % head)

    return _trace_fn


def _corrupt_site():
    from ..resilience.faults import FaultSite

    return FaultSite.TRACE_GUARD_CORRUPT


# ---------------------------------------------------------------------------
# Tier-4 chained dispatch: run_compiled_chain with megablock acceleration.
# ---------------------------------------------------------------------------

def run_traced_chain(core, record, ctx, blocks_executed: int, traces):
    """Execute ``record``'s chain with tier-4 megablock acceleration.

    The per-block iteration is :func:`repro.vliw.codegen.run_compiled_chain`
    verbatim — the same profiling seam, the same break reasons in the
    same order.  On top of it, **trace heads** (the chain-walk start and
    every backward-edge target, i.e. loop headers) are checked against
    the trace manager: an installed megablock runs the whole recorded
    path in one driver call, an uncompiled hot head is counted toward
    recording.  Head detection must live *inside* the walk because in
    steady state one fused dispatch can execute the entire guest loop —
    the dispatcher boundary is far too coarse to ever see a loop header
    twice.

    Returns ``run_compiled_chain``'s 5-tuple; exactly one chain break is
    recorded per call whichever mix of megablock and per-block execution
    produced it.
    """
    from ..vliw.pipeline import ExitReason, VliwExecutionError, _RollbackSignal

    regs = core.regs
    mcb_clear = core.mcb.clear
    core_stats = core.stats
    config = core.config

    out_map = ctx.out
    raw_blocks = ctx.raw_blocks
    block_counts = ctx.block_counts
    branches = ctx.branches
    new_branch_profile = ctx.branch_profile
    hot_threshold = ctx.hot_threshold
    max_optimizations = ctx.max_optimizations
    engine_stats = ctx.engine_stats
    max_blocks = ctx.max_blocks
    max_cycles = ctx.max_cycles
    lru = ctx.lru
    link_successor = ctx.link_successor
    syscall = ExitReason.SYSCALL
    dispatches = 0

    megablocks = traces._megablocks
    visit = traces.visit
    head_visit = True

    while True:
        entry = record.entry
        if head_visit:
            head_visit = False
            mega = megablocks.get(entry)
            if mega is not None:
                if mega.steps[0] is not record:
                    # The head's translation changed under the megablock
                    # (the synchronous retirement hooks should make this
                    # unreachable); never execute a stale trace.
                    traces.retire_entry(entry)
                    mega = None
            else:
                visit(entry)
                # A sync-mode compile can install the megablock inside
                # visit(); run it on the *next* head arrival so the
                # recording dispatch itself stays on the per-block path.
            if mega is not None:
                status = None
                try:
                    (status, result, idx, blocks_executed,
                     mega_dispatches) = mega.fn(core, ctx, blocks_executed)
                except MegablockCorruptError:
                    # Integrity failure before any state change: retire
                    # the trace and re-dispatch this record down the
                    # per-block tiers.
                    traces.demote(mega, corrupted=True)
                if status is not None:
                    dispatches += mega_dispatches
                    step = mega.steps[idx]
                    if status != "cont":
                        traces.note_exit(mega, status, mega_dispatches)
                        record = step
                        reason = status
                        break
                    kind = ("side_exit" if idx < len(mega.steps) - 1
                            else "loop_exit" if mega.loop
                            else "trace_end")
                    traces.note_exit(mega, kind, mega_dispatches)
                    # run_compiled_chain's successor tail, for the block
                    # the trace exited from.
                    next_pc = result.next_pc
                    successors = out_map.get(step.entry)
                    nxt = (successors.get(next_pc)
                           if successors is not None else None)
                    if nxt is None:
                        successor_block = raw_blocks.get(next_pc)
                        if successor_block is None:
                            record = step
                            reason = "miss"
                            break
                        nxt = link_successor(step.entry, next_pc,
                                             successor_block)
                    head_visit = next_pc <= step.entry
                    record = nxt
                    continue

        # --- per-block iteration: run_compiled_chain's body, verbatim.
        blocks_executed += 1
        dispatches += 1
        core_stats.blocks_executed += 1
        fblock = record.fblock
        if fblock is None:
            fblock = record.fblock = finalize_block(record.block, config)
        fn = fblock.compiled
        if record.can_rollback:
            entry_regs = regs._regs[:]
            store_log = []
        else:
            entry_regs = None
            store_log = None
        rolled_back = False
        try:
            if fn is not None:
                result = fn(core, store_log)
            else:
                result = core._run_fast(fblock, store_log)
        except _RollbackSignal:
            core._undo(entry_regs, store_log)
            mcb_clear()
            core_stats.rollbacks += 1
            core.cycle += config.rollback_penalty
            recovery = record.block.recovery
            if recovery is None:
                raise VliwExecutionError(
                    "MCB conflict in block %#x with no recovery code"
                    % entry)
            result = core._run(recovery, None)
            result.rolled_back = True
            rolled_back = True

        mcb_clear()
        core.instret += result.guest_instructions
        if lru:
            current = raw_blocks.pop(entry, None)
            if current is not None:
                raw_blocks[entry] = current
        count = block_counts.get(entry, 0) + 1
        block_counts[entry] = count
        branch = record.branch
        reason_exit = result.reason
        if branch is not None and reason_exit is not syscall:
            branch_profile = branches.get(branch[0])
            if branch_profile is None:
                branch_profile = new_branch_profile()
                branches[branch[0]] = branch_profile
            if result.next_pc == branch[1]:
                branch_profile.taken += 1
            else:
                branch_profile.not_taken += 1
        if (record.firstpass and count >= hot_threshold
                and engine_stats.optimizations < max_optimizations):
            reason = "hot"
            break
        elif rolled_back:
            reason = "rollback"
            break
        if reason_exit is syscall:
            reason = "syscall"
            break
        if blocks_executed >= max_blocks or core.cycle >= max_cycles:
            reason = "budget"
            break
        next_pc = result.next_pc
        successors = out_map.get(entry)
        nxt = successors.get(next_pc) if successors is not None else None
        if nxt is None:
            successor_block = raw_blocks.get(next_pc)
            if successor_block is None:
                reason = "miss"
                break
            nxt = link_successor(entry, next_pc, successor_block)
        head_visit = next_pc <= entry
        record = nxt

    return result, reason, record, blocks_executed, dispatches
