"""The software Dynamic Binary Translation engine.

First-pass translation, profiling, superblock construction, the
dependence-graph IR, the speculative list scheduler and the translation
cache — the software half of the DBT-based processor.
"""

from .blocks import BasicBlock, BlockDiscoveryError, discover_block
from .codegen import CodegenError, sequential_translate, vliw_op_from_ir
from .ir import (
    BARRIER_KINDS,
    DepKind,
    Dependence,
    EXIT_KINDS,
    IRBlock,
    IRInstruction,
    IRKind,
    predecessors_by_kind,
)
from .irbuilder import UnsupportedGuestCode, build_ir
from .profile import BranchProfile, ExecutionProfile
from .scheduler import SchedulerError, SchedulerOptions, schedule_block
from .superblock import SuperblockLimits, SuperblockPlan, build_superblock
from .translation_cache import TranslationCache, TranslationCacheStats
from .verify import ScheduleViolation, check_schedule

#: Engine exports are loaded lazily: the engine imports repro.security,
#: which itself needs repro.dbt.ir — eager import would be circular.
_LAZY_ENGINE_EXPORTS = ("DbtEngine", "DbtEngineConfig", "DbtEngineStats")


def __getattr__(name):
    if name in _LAZY_ENGINE_EXPORTS:
        from . import engine
        return getattr(engine, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))

__all__ = [
    "BARRIER_KINDS",
    "BasicBlock",
    "BlockDiscoveryError",
    "BranchProfile",
    "CodegenError",
    "DbtEngine",
    "DbtEngineConfig",
    "DbtEngineStats",
    "DepKind",
    "Dependence",
    "EXIT_KINDS",
    "ExecutionProfile",
    "IRBlock",
    "IRInstruction",
    "IRKind",
    "SchedulerError",
    "SchedulerOptions",
    "SuperblockLimits",
    "SuperblockPlan",
    "ScheduleViolation",
    "TranslationCache",
    "TranslationCacheStats",
    "UnsupportedGuestCode",
    "build_ir",
    "build_superblock",
    "check_schedule",
    "discover_block",
    "predecessors_by_kind",
    "schedule_block",
    "sequential_translate",
    "vliw_op_from_ir",
]
