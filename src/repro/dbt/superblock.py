"""Superblock (trace) construction.

The paper's Section III-A optimization: once a block is hot, the DBT
engine merges basic blocks along the profiled hot path into a single
superblock, within which the scheduler may speculate.  Growth follows the
biased direction of each conditional branch and unconditional direct
jumps; it stops at indirect jumps, calls, syscalls, trace re-entry
(loops) and a size limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from ..isa.opcodes import Mnemonic
from ..isa.program import Program
from .blocks import BasicBlock, discover_block
from .profile import ExecutionProfile


@dataclass(frozen=True)
class SuperblockLimits:
    """Growth policy knobs."""

    #: Maximum guest instructions per superblock.
    max_instructions: int = 64
    #: Minimum recorded outcomes before a branch's bias is trusted.
    min_branch_samples: int = 8
    #: Minimum bias (fraction of dominant direction) to follow a branch.
    min_branch_bias: float = 0.7
    #: Whether the trace may revisit a block (loop unrolling).  Unrolled
    #: iterations are what give the scheduler its cross-iteration
    #: speculation opportunities: loads of iteration i+1 hoisted above
    #: the guard branch and the stores of iteration i.
    allow_unrolling: bool = True


@dataclass
class SuperblockPlan:
    """The chosen trace: the path plus the predicted final successor."""

    path: List[BasicBlock]
    #: Predicted successor of the last terminator (None when unknown or
    #: when the last terminator is not a conditional branch/jump).
    final_next: Optional[int]

    @property
    def guest_instructions(self) -> int:
        return sum(block.size for block in self.path)

    @property
    def entry(self) -> int:
        return self.path[0].entry


def build_superblock(
    program: Program,
    entry: int,
    profile: ExecutionProfile,
    limits: Optional[SuperblockLimits] = None,
) -> SuperblockPlan:
    """Grow a superblock from ``entry`` along the profiled hot path."""
    limits = limits or SuperblockLimits()
    path: List[BasicBlock] = []
    visited: Set[int] = set()
    total = 0
    pc: Optional[int] = entry
    stopped_at: Optional[int] = None

    while pc is not None:
        if pc in visited and not limits.allow_unrolling:
            stopped_at = pc
            break
        block = discover_block(program, pc)
        if path and total + block.size > limits.max_instructions:
            stopped_at = pc
            break
        path.append(block)
        visited.add(pc)
        total += block.size
        pc = _next_on_trace(block, profile, limits)

    if not path:
        path.append(discover_block(program, entry))
    final_next = _predict_back_edge(path, stopped_at, profile, limits)
    return SuperblockPlan(path=path, final_next=final_next)


def _next_on_trace(
    block: BasicBlock, profile: ExecutionProfile, limits: SuperblockLimits,
) -> Optional[int]:
    """Successor the trace should follow out of ``block`` (None = stop)."""
    term = block.terminator
    if term.is_branch:
        direction = profile.predicted_direction(
            term.address, limits.min_branch_samples, limits.min_branch_bias,
        )
        if direction is None:
            return None
        taken_target, fallthrough = block.branch_targets()
        return taken_target if direction else fallthrough
    if term.mnemonic is Mnemonic.JAL and term.rd == 0:
        # Direct jump: follow it (tail of a loop, goto...).
        return term.address + term.imm
    # Calls, returns, indirect jumps and syscalls end the trace.
    return None


def _predict_back_edge(
    path: Sequence[BasicBlock],
    stopped_at: Optional[int],
    profile: ExecutionProfile,
    limits: SuperblockLimits,
) -> Optional[int]:
    """Predicted direction of the final terminator, for the IR builder.

    When the trace stopped because it would re-enter itself (a loop), the
    hot direction of the final branch is the back edge; encoding it as
    the predicted successor lets the loop run through a cheap
    unconditional jump rather than a penalised side exit.
    """
    if not path:
        return None
    term = path[-1].terminator
    if not term.is_branch:
        return None
    direction = profile.predicted_direction(
        term.address, limits.min_branch_samples, limits.min_branch_bias,
    )
    if direction is None:
        return stopped_at
    taken_target, fallthrough = path[-1].branch_targets()
    return taken_target if direction else fallthrough
