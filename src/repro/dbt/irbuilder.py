"""Lowering guest instructions into the DBT IR.

Takes a *trace path* — one basic block, or a superblock path of several —
and produces a single :class:`IRBlock`.  Conditional branches inside the
path become *side exits*: the exit condition is the branch condition when
the trace follows the fall-through, and its negation when the trace
follows the taken direction (the trace encodes the predicted path).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..interp.state import MASK64
from ..isa.instruction import Instruction
from ..isa.opcodes import CSR_CYCLE, CSR_INSTRET, CSR_TIME, Mnemonic, SIGNED_LOADS
from ..vliw.isa import Condition
from .blocks import BasicBlock
from .ir import IRBlock, IRInstruction, IRKind


class UnsupportedGuestCode(Exception):
    """Raised for guest constructs the DBT declines to translate."""


#: Guest R-type mnemonics whose ALU op shares the mnemonic name.
_ALU_REG = {
    m: m.value for m in (
        Mnemonic.ADD, Mnemonic.SUB, Mnemonic.SLL, Mnemonic.SLT, Mnemonic.SLTU,
        Mnemonic.XOR, Mnemonic.SRL, Mnemonic.SRA, Mnemonic.OR, Mnemonic.AND,
        Mnemonic.ADDW, Mnemonic.SUBW, Mnemonic.SLLW, Mnemonic.SRLW, Mnemonic.SRAW,
        Mnemonic.MUL, Mnemonic.MULH, Mnemonic.MULHSU, Mnemonic.MULHU,
        Mnemonic.DIV, Mnemonic.DIVU, Mnemonic.REM, Mnemonic.REMU,
        Mnemonic.MULW, Mnemonic.DIVW, Mnemonic.DIVUW, Mnemonic.REMW, Mnemonic.REMUW,
    )
}

#: Guest immediate-form mnemonics -> ALU op.
_ALU_IMM = {
    Mnemonic.ADDI: "add", Mnemonic.SLTI: "slt", Mnemonic.SLTIU: "sltu",
    Mnemonic.XORI: "xor", Mnemonic.ORI: "or", Mnemonic.ANDI: "and",
    Mnemonic.SLLI: "sll", Mnemonic.SRLI: "srl", Mnemonic.SRAI: "sra",
    Mnemonic.ADDIW: "addw", Mnemonic.SLLIW: "sllw", Mnemonic.SRLIW: "srlw",
    Mnemonic.SRAIW: "sraw",
}

_BRANCH_CONDITION = {
    Mnemonic.BEQ: Condition.EQ, Mnemonic.BNE: Condition.NE,
    Mnemonic.BLT: Condition.LT, Mnemonic.BGE: Condition.GE,
    Mnemonic.BLTU: Condition.LTU, Mnemonic.BGEU: Condition.GEU,
}


def build_ir(path: Sequence[BasicBlock], final_next: Optional[int] = None) -> IRBlock:
    """Lower a trace path (>= 1 basic blocks) into one IR block.

    ``final_next`` is the predicted successor of the *last* terminator
    (when it is a conditional branch): the trace's hot path then leaves
    through a cheap unconditional jump instead of a side exit, which is
    what makes loop traces fast.
    """
    if not path:
        raise ValueError("empty trace path")
    block = IRBlock(entry=path[0].entry)
    guest_index = 0

    for position, basic_block in enumerate(path):
        if position + 1 < len(path):
            on_trace_next = path[position + 1].entry
        else:
            on_trace_next = final_next
        for inst in basic_block.instructions:
            is_terminator = inst is basic_block.terminator
            _lower(
                block, inst, guest_index,
                fallthrough=inst.address + 4,
                on_trace_next=on_trace_next if is_terminator else None,
                is_final=is_terminator and position == len(path) - 1,
            )
            guest_index += 1
    block.guest_length = guest_index
    _ensure_terminated(block, path[-1])
    return block


def _ensure_terminated(block: IRBlock, last_bb: BasicBlock) -> None:
    if block.instructions and block.instructions[-1].kind in (
        IRKind.JUMP_EXIT, IRKind.INDIRECT_EXIT, IRKind.SYSCALL_EXIT,
    ):
        return
    # Trace followed the last terminator's on-trace direction (e.g. a
    # loop back-edge): close the block with an explicit jump there.
    term = last_bb.terminator
    if term.is_branch:
        # build_ir emits the side exit; the on-trace direction needs a jump.
        raise AssertionError("branch terminator must be closed by _lower")
    target = term.address + term.imm if term.mnemonic is Mnemonic.JAL else last_bb.fallthrough
    block.append(IRInstruction(
        IRKind.JUMP_EXIT, target=target,
        guest_address=term.address, guest_index=len(block.instructions),
    ))


def _lower(
    block: IRBlock,
    inst: Instruction,
    guest_index: int,
    fallthrough: int,
    on_trace_next: Optional[int],
    is_final: bool,
) -> None:
    mnemonic = inst.mnemonic
    pc = inst.address

    def emit(kind: IRKind, **kwargs) -> None:
        block.append(IRInstruction(
            kind, guest_address=pc, guest_index=guest_index, **kwargs,
        ))

    if mnemonic in _ALU_REG:
        emit(IRKind.ALU, op=_ALU_REG[mnemonic], dst=inst.rd,
             src1=inst.rs1, src2=inst.rs2)
    elif mnemonic in _ALU_IMM:
        emit(IRKind.ALUI, op=_ALU_IMM[mnemonic], dst=inst.rd,
             src1=inst.rs1, imm=inst.imm)
    elif mnemonic is Mnemonic.LUI:
        emit(IRKind.LI, dst=inst.rd, imm=inst.imm << 12)
    elif mnemonic is Mnemonic.AUIPC:
        emit(IRKind.LI, dst=inst.rd, imm=(pc + (inst.imm << 12)) & MASK64)
    elif inst.is_load:
        emit(IRKind.LOAD, dst=inst.rd, src1=inst.rs1, imm=inst.imm,
             width=inst.access_width, signed=mnemonic in SIGNED_LOADS)
    elif inst.is_store:
        emit(IRKind.STORE, src1=inst.rs1, src2=inst.rs2, imm=inst.imm,
             width=inst.access_width)
    elif mnemonic is Mnemonic.JAL:
        if inst.rd != 0:
            emit(IRKind.LI, dst=inst.rd, imm=fallthrough)
        target = pc + inst.imm
        if on_trace_next is not None and target == on_trace_next and not is_final:
            return  # The trace follows the jump: no exit needed.
        emit(IRKind.JUMP_EXIT, target=target)
    elif mnemonic is Mnemonic.JALR:
        if inst.rd != 0 and inst.rd == inst.rs1:
            raise UnsupportedGuestCode(
                "jalr with rd == rs1 at %#x is not supported by this DBT" % pc
            )
        if inst.rd != 0:
            emit(IRKind.LI, dst=inst.rd, imm=fallthrough)
        emit(IRKind.INDIRECT_EXIT, src1=inst.rs1, imm=inst.imm)
    elif inst.is_branch:
        condition = _BRANCH_CONDITION[mnemonic]
        taken = pc + inst.imm
        if on_trace_next is not None and on_trace_next == taken:
            # Predicted taken: exit on the *negated* condition to the
            # fall-through; trace continues at the taken target.
            emit(IRKind.BRANCH_EXIT, condition=condition.negated(),
                 src1=inst.rs1, src2=inst.rs2, target=fallthrough)
            if is_final:
                emit(IRKind.JUMP_EXIT, target=taken)
        else:
            emit(IRKind.BRANCH_EXIT, condition=condition,
                 src1=inst.rs1, src2=inst.rs2, target=taken)
            if is_final or on_trace_next is None:
                emit(IRKind.JUMP_EXIT, target=fallthrough)
    elif mnemonic is Mnemonic.ECALL:
        emit(IRKind.SYSCALL_EXIT, target=pc)
    elif mnemonic is Mnemonic.EBREAK:
        emit(IRKind.SYSCALL_EXIT, target=pc, imm=1)
    elif mnemonic in (Mnemonic.CSRRW, Mnemonic.CSRRS, Mnemonic.CSRRC):
        if inst.rs1 != 0:
            raise UnsupportedGuestCode("CSR writes are not supported (pc %#x)" % pc)
        if inst.imm in (CSR_CYCLE, CSR_TIME):
            emit(IRKind.RDCYCLE, dst=inst.rd)
        elif inst.imm == CSR_INSTRET:
            emit(IRKind.RDINSTRET, dst=inst.rd)
        else:
            raise UnsupportedGuestCode("unsupported CSR %#x (pc %#x)" % (inst.imm, pc))
    elif mnemonic is Mnemonic.FENCE:
        emit(IRKind.FENCE)
    elif mnemonic is Mnemonic.CFLUSH:
        emit(IRKind.CFLUSH, src1=inst.rs1, imm=inst.imm)
    else:  # pragma: no cover - ISA fully covered above
        raise UnsupportedGuestCode("cannot lower %s at %#x" % (mnemonic.value, pc))
