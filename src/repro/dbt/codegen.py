"""IR -> VLIW operation lowering and the naive first-pass code generator.

The first-pass translator is the DBT's fast path: it lowers a single
basic block one operation per bundle, with no reordering and no
speculation, so that cold code starts executing immediately.  Hot blocks
are later rebuilt as superblocks and scheduled aggressively by
:mod:`repro.dbt.scheduler`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..vliw.block import TranslatedBlock
from ..vliw.bundle import Bundle
from ..vliw.config import VliwConfig
from ..vliw.isa import VliwOp, VliwOpcode
from .ir import IRBlock, IRInstruction, IRKind


class CodegenError(Exception):
    """Raised when an IR instruction cannot be lowered."""


RegMap = Callable[[int], int]


def _identity(reg: int) -> int:
    return reg


def vliw_op_from_ir(
    inst: IRInstruction,
    src_map: RegMap = _identity,
    dest_override: Optional[int] = None,
) -> VliwOp:
    """Lower one IR instruction to a VLIW operation.

    ``src_map`` rewrites source registers (hidden-register renaming);
    ``dest_override`` replaces the destination (speculative defs).
    """
    kind = inst.kind
    dest = dest_override if dest_override is not None else inst.dst
    src1 = src_map(inst.src1) if inst.src1 is not None else None
    src2 = src_map(inst.src2) if inst.src2 is not None else None
    origin = inst.guest_index

    if kind is IRKind.ALU:
        return VliwOp(VliwOpcode.ALU, alu_op=inst.op, dest=dest,
                      src1=src1, src2=src2, origin=origin)
    if kind is IRKind.ALUI:
        return VliwOp(VliwOpcode.ALU, alu_op=inst.op, dest=dest,
                      src1=src1, imm=inst.imm, origin=origin)
    if kind is IRKind.LI:
        return VliwOp(VliwOpcode.LI, dest=dest, imm=inst.imm, origin=origin)
    if kind is IRKind.MOV:
        return VliwOp(VliwOpcode.MOV, dest=dest, src1=src1, origin=origin)
    if kind is IRKind.LOAD:
        return VliwOp(VliwOpcode.LOAD, dest=dest, src1=src1, imm=inst.imm,
                      width=inst.width, signed=inst.signed, origin=origin)
    if kind is IRKind.STORE:
        return VliwOp(VliwOpcode.STORE, src1=src1, src2=src2, imm=inst.imm,
                      width=inst.width, origin=origin)
    if kind is IRKind.CFLUSH:
        return VliwOp(VliwOpcode.CFLUSH, src1=src1, imm=inst.imm, origin=origin)
    if kind is IRKind.FENCE:
        return VliwOp(VliwOpcode.FENCE, origin=origin)
    if kind is IRKind.RDCYCLE:
        return VliwOp(VliwOpcode.RDCYCLE, dest=dest, origin=origin)
    if kind is IRKind.RDINSTRET:
        return VliwOp(VliwOpcode.RDINSTRET, dest=dest, origin=origin)
    if kind is IRKind.BRANCH_EXIT:
        return VliwOp(VliwOpcode.BRANCH, condition=inst.condition,
                      src1=src1 if src1 is not None else 0,
                      src2=src2 if src2 is not None else 0,
                      target=inst.target, origin=origin)
    if kind is IRKind.JUMP_EXIT:
        return VliwOp(VliwOpcode.JUMP, target=inst.target, origin=origin)
    if kind is IRKind.INDIRECT_EXIT:
        return VliwOp(VliwOpcode.JUMPR, src1=src1, imm=inst.imm, origin=origin)
    if kind is IRKind.SYSCALL_EXIT:
        return VliwOp(VliwOpcode.SYSCALL, target=inst.target,
                      imm=inst.imm, origin=origin)
    raise CodegenError("cannot lower IR kind %r" % kind)  # pragma: no cover


def sequential_translate(ir: IRBlock, config: VliwConfig,
                         kind: str = "firstpass") -> TranslatedBlock:
    """Naive lowering: one operation per bundle, program order."""
    bundles: List[Bundle] = []
    exits: List[int] = []
    for inst in ir.instructions:
        op = vliw_op_from_ir(inst)
        bundles.append(Bundle(ops=(op,)))
        if inst.is_exit and inst.target is not None:
            exits.append(inst.target)
    if not bundles:
        raise CodegenError("empty IR block at %#x" % ir.entry)
    return TranslatedBlock(
        guest_entry=ir.entry,
        bundles=tuple(bundles),
        guest_length=ir.guest_length,
        kind=kind,
        exits=tuple(exits),
    )
