"""Speculative VLIW list scheduler.

This is where the DBT engine speculates (paper Section III), and where
the GhostBusters mitigation bites (Section IV-B):

* **Branch speculation** — an instruction whose control dependence on an
  earlier trace exit is relaxable gets its destination renamed onto a
  *hidden register*; a pinned ``MOV`` at the original program point
  commits the value to the architectural register.  The renamed
  instruction is then free to be scheduled above the exit: if the exit
  is taken at run time, the commit never executes and the architectural
  state is untouched — but any cache line the instruction pulled in
  stays (Spectre v1).
* **Memory speculation** — a load scheduled above a store it may depend
  on is emitted with the speculative opcode and tracked by the MCB
  (Spectre v4).  The number of such loads is bounded by the MCB size.
* **Mitigation** — the security pass communicates purely through
  ``SPECTRE`` dependence edges (non-relaxable): a pinned instruction
  simply can no longer move above its guards.  The scheduler needs no
  special cases — exactly the paper's "fine-grained control over the
  instruction scheduling".

Scheduling itself is classic cycle-driven list scheduling with
critical-path priorities, latency-aware readiness and bipartite slot
matching.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..obs.observer import maybe_phase
from ..vliw.block import TranslatedBlock
from ..vliw.bundle import Bundle
from ..vliw.config import VliwConfig
from ..vliw.isa import VliwOp, VliwOpcode
from .codegen import sequential_translate, vliw_op_from_ir
from .ir import DepKind, Dependence, IRBlock, IRInstruction, IRKind


class SchedulerError(Exception):
    """Raised when a block cannot be scheduled (internal invariant)."""


@dataclass(frozen=True)
class SchedulerOptions:
    """Which speculation the policy allows."""

    branch_speculation: bool = True
    memory_speculation: bool = True
    #: Upper bound on MCB-tracked loads per block (the MCB capacity).
    max_speculative_loads: int = 16


#: IR kinds whose instructions may be hoisted above a trace exit.
_HOISTABLE_KINDS = frozenset({
    IRKind.ALU, IRKind.ALUI, IRKind.LI, IRKind.MOV, IRKind.LOAD,
})


# ---------------------------------------------------------------------------
# Renaming prepass.
# ---------------------------------------------------------------------------

@dataclass
class _RenameResult:
    """Transformed instruction list plus bookkeeping."""

    instructions: List[IRInstruction]
    #: Indices (in the transformed list) of hoistable instructions.
    hoistable: Set[int]
    #: Indices of commit MOVs (for statistics).
    commits: Set[int]
    renamed_defs: int = 0


def _pinned_indices(block: IRBlock) -> Set[int]:
    """Instructions targeted by mitigation (SPECTRE edges)."""
    return {edge.dst for edge in block.extra_dependences
            if edge.kind is DepKind.SPECTRE}


def _rename_for_speculation(
    block: IRBlock, config: VliwConfig, enabled: bool,
) -> Tuple[IRBlock, _RenameResult]:
    """Rewrite speculation candidates onto hidden registers.

    Every instruction that (a) may be hoisted above at least one earlier
    exit, (b) defines an architectural register and (c) is not pinned by
    a SPECTRE edge gets: its destination renamed to a fresh hidden
    register, its in-block consumers rewritten to read that register, and
    a *commit* ``MOV`` inserted at its original position.  The commit is
    control-dependent on the exits, so wrong-path values never reach the
    architectural register file.
    """
    instructions = list(block.instructions)
    pinned = _pinned_indices(block)
    hidden_pool = list(config.hidden_registers())
    result = _RenameResult(instructions=[], hoistable=set(), commits=set())
    output: List[IRInstruction] = []
    #: Map original index -> transformed index (for SPECTRE edge rewrite).
    index_map: Dict[int, int] = {}
    needs_commit = _commit_liveness(instructions)

    seen_exit = False
    #: Active renames: architectural reg -> hidden reg (until redefined).
    active: Dict[int, int] = {}

    for original_index, inst in enumerate(instructions):
        inst = _rewrite_sources(inst, active)
        defined = inst.defines()

        # A fresh definition of an architectural register ends any active
        # rename of it (consumers beyond this point read the new value).
        if defined is not None and defined in active:
            del active[defined]

        candidate = (
            enabled
            and seen_exit
            and inst.kind in _HOISTABLE_KINDS
            and original_index not in pinned
            and defined is not None
            and hidden_pool
        )
        if candidate:
            hidden = hidden_pool.pop(0)
            renamed = replace(inst, dst=hidden)
            index_map[original_index] = len(output)
            result.hoistable.add(len(output))
            output.append(renamed)
            if needs_commit[original_index]:
                commit = IRInstruction(
                    IRKind.MOV, dst=defined, src1=hidden,
                    guest_address=inst.guest_address,
                    guest_index=inst.guest_index,
                )
                result.commits.add(len(output))
                output.append(commit)
            active[defined] = hidden
            result.renamed_defs += 1
        else:
            index_map[original_index] = len(output)
            if (
                enabled
                and seen_exit
                and inst.kind in _HOISTABLE_KINDS
                and original_index not in pinned
                and defined is None
            ):
                # No architectural effect: hoistable without renaming.
                result.hoistable.add(len(output))
            output.append(inst)

        if inst.is_exit:
            seen_exit = True

    transformed = IRBlock(entry=block.entry, instructions=output)
    transformed.guest_length = block.guest_length
    # Carry mitigation edges over to the transformed indices.
    for edge in block.extra_dependences:
        transformed.extra_dependences.append(Dependence(
            index_map[edge.src], index_map[edge.dst],
            edge.kind, edge.relaxable, edge.min_delay,
        ))
    result.instructions = output
    return transformed, result


def _commit_liveness(instructions: List[IRInstruction]) -> List[bool]:
    """Whether each definition must be committed architecturally.

    A renamed definition needs its commit ``MOV`` only when its value can
    be observed outside the block: i.e. no later instruction redefines
    the same architectural register *before the next trace exit*.  When a
    redefinition happens first, the earlier commit would always be
    overwritten before any exit could expose it — so it is dead and can
    be dropped, which removes most commit traffic for short-lived
    temporaries in unrolled loop bodies.
    """
    count = len(instructions)
    needs = [True] * count
    for index, inst in enumerate(instructions):
        defined = inst.defines()
        if defined is None:
            continue
        for later in range(index + 1, count):
            other = instructions[later]
            if other.is_exit:
                break
            if other.defines() == defined:
                needs[index] = False
                break
    return needs


def _rewrite_sources(inst: IRInstruction, active: Dict[int, int]) -> IRInstruction:
    src1 = active.get(inst.src1, inst.src1) if inst.src1 is not None else None
    src2 = active.get(inst.src2, inst.src2) if inst.src2 is not None else None
    if src1 == inst.src1 and src2 == inst.src2:
        return inst
    return replace(inst, src1=src1, src2=src2)


# ---------------------------------------------------------------------------
# List scheduling.
# ---------------------------------------------------------------------------

def schedule_block(
    ir: IRBlock,
    config: VliwConfig,
    options: Optional[SchedulerOptions] = None,
    kind: str = "optimized",
    build_recovery: bool = True,
    observer=None,
) -> TranslatedBlock:
    """Schedule ``ir`` into a :class:`TranslatedBlock` under ``options``.

    ``observer`` (an optional :class:`repro.obs.observer.Observer`)
    records the two scheduler phases as trace spans: ``regalloc`` (the
    hidden-register renaming prepass) and ``schedule`` (list scheduling,
    bundle emission and recovery-code build).
    """
    options = options or SchedulerOptions()
    with maybe_phase(observer, "regalloc", entry="%#x" % ir.entry):
        block, renames = _rename_for_speculation(
            ir, config, enabled=options.branch_speculation,
        )
    with maybe_phase(observer, "schedule", entry="%#x" % ir.entry, kind=kind):
        return _schedule_renamed(
            ir, block, renames, config, options, kind, build_recovery,
        )


def _schedule_renamed(
    ir: IRBlock,
    block: IRBlock,
    renames: "_RenameResult",
    config: VliwConfig,
    options: SchedulerOptions,
    kind: str,
    build_recovery: bool,
) -> TranslatedBlock:
    """List-schedule the renamed ``block`` (the body of ``schedule_block``)."""
    ops = [vliw_op_from_ir(inst) for inst in block.instructions]
    count = len(ops)
    if count == 0:
        raise SchedulerError("cannot schedule an empty block")

    enforced: List[List[Tuple[int, int]]] = [[] for _ in range(count)]  # (pred, delay)
    relaxed_mem: List[List[int]] = [[] for _ in range(count)]  # pred stores
    relaxed_ctrl: List[List[int]] = [[] for _ in range(count)]  # pred exits
    successors: List[List[Tuple[int, int]]] = [[] for _ in range(count)]

    # Producer latency per op, computed once: DATA edges all share the
    # same per-producer delay, and blocks carry O(n^2) edges.
    hit_latency = config.cache.hit_latency
    latencies = config.latencies
    data_delay = [
        hit_latency if op.opcode is VliwOpcode.LOAD
        else max(1, latencies[op.unit])
        for op in ops
    ]

    for edge in block.dependences():
        delay = (data_delay[edge.src] if edge.kind is DepKind.DATA
                 else edge.min_delay)
        if edge.relaxable and edge.kind is DepKind.MEM and options.memory_speculation:
            relaxed_mem[edge.dst].append(edge.src)
            continue
        if (
            edge.relaxable
            and edge.kind is DepKind.CTRL
            and options.branch_speculation
            and edge.dst in renames.hoistable
        ):
            relaxed_ctrl[edge.dst].append(edge.src)
            continue
        enforced[edge.dst].append((edge.src, delay))
        successors[edge.src].append((edge.dst, delay))

    priority = _critical_path(count, successors, ops, config)

    scheduled_bundle: List[Optional[int]] = [None] * count
    remaining = count
    cycle = 0
    spec_budget = options.max_speculative_loads
    speculative: Set[int] = set()
    max_cycles = count * 64 + 256  # progress safety net

    order = sorted(range(count), key=lambda i: -priority[i])
    issue_width = config.issue_width
    slots_for = config.slots_for
    while remaining:
        if cycle > max_cycles:
            raise SchedulerError(
                "scheduler failed to make progress on block %#x" % ir.entry
            )
        order = [n for n in order if scheduled_bundle[n] is None]
        chosen: List[int] = []
        chosen_set: Set[int] = set()
        chosen_ops: List[VliwOp] = []
        # Incremental bipartite matching over the issue slots: the
        # augmenting-path extension accepts a candidate exactly when the
        # from-scratch ``assign_slots`` feasibility check would (a
        # matching saturating the chosen ops extends to the candidate iff
        # a maximum matching saturates all of them), while touching only
        # the new op's alternating paths.
        op_of_slot: List[Optional[int]] = [None] * issue_width

        def _try_place(op_index: int, visited: List[bool]) -> bool:
            for slot_index in slots_for(chosen_ops[op_index].unit):
                if visited[slot_index]:
                    continue
                visited[slot_index] = True
                holder = op_of_slot[slot_index]
                if holder is None or _try_place(holder, visited):
                    op_of_slot[slot_index] = op_index
                    return True
            return False

        progress = True
        while progress:
            progress = False
            for node in order:
                if node in chosen_set:
                    continue
                placement = _placeable(
                    node, cycle, enforced, relaxed_mem, scheduled_bundle,
                    chosen_set, spec_budget, ops,
                )
                if placement is None:
                    continue
                is_speculative = placement
                candidate_op = ops[node]
                if is_speculative:
                    candidate_op = candidate_op.as_speculative()
                if len(chosen_ops) >= issue_width:
                    continue
                chosen_ops.append(candidate_op)
                if not _try_place(len(chosen_ops) - 1,
                                  [False] * issue_width):
                    chosen_ops.pop()
                    continue
                chosen.append(node)
                chosen_set.add(node)
                if is_speculative:
                    speculative.add(node)
                    spec_budget -= 1
                progress = True
        for node in chosen:
            scheduled_bundle[node] = cycle
        remaining -= len(chosen)
        cycle += 1

    bundles, speculative = _emit_bundles(
        ops, scheduled_bundle, speculative, relaxed_mem,
    )
    exits = tuple(
        inst.target for inst in block.instructions
        if inst.is_exit and inst.target is not None
    )
    hoisted = sum(
        1 for node in range(count)
        if any(scheduled_bundle[node] <= scheduled_bundle[e] for e in relaxed_ctrl[node])
    )
    recovery = None
    if build_recovery and speculative:
        # Non-speculative variant executed after an MCB rollback; built
        # from the *original* IR so no hidden-register commits linger.
        recovery = sequential_translate(ir, config, kind="recovery")

    translated = TranslatedBlock(
        guest_entry=ir.entry,
        bundles=tuple(bundles),
        guest_length=ir.guest_length,
        kind=kind,
        recovery=recovery,
        exits=exits,
        speculative_loads=len(speculative),
        branch_hoisted_ops=hoisted,
    )
    return translated


def _placeable(
    node: int,
    cycle: int,
    enforced: List[List[Tuple[int, int]]],
    relaxed_mem: List[List[int]],
    scheduled_bundle: List[Optional[int]],
    chosen: Set[int],
    spec_budget: int,
    ops: List[VliwOp],
) -> Optional[bool]:
    """Whether ``node`` may issue in ``cycle``.

    Returns ``None`` (not placeable), ``False`` (placeable, not
    speculative) or ``True`` (placeable as an MCB-speculative load).
    """
    for pred, delay in enforced[node]:
        bundle = scheduled_bundle[pred]
        if bundle is None:
            if pred in chosen and delay == 0:
                continue
            return None
        if bundle + delay > cycle:
            return None
    needs_speculation = False
    for pred in relaxed_mem[node]:
        bundle = scheduled_bundle[pred]
        if bundle is None or bundle >= cycle or pred in chosen:
            needs_speculation = True
            break
    if needs_speculation and spec_budget <= 0:
        return None
    return needs_speculation


def _critical_path(
    count: int,
    successors: List[List[Tuple[int, int]]],
    ops: Sequence[VliwOp],
    config: VliwConfig,
) -> List[int]:
    """Longest path (in cycles) from each node to the block end."""
    priority = [0] * count
    for node in range(count - 1, -1, -1):
        best = 0
        for succ, delay in successors[node]:
            best = max(best, priority[succ] + max(delay, 1 if succ != node else 1))
        priority[node] = best + 1
    return priority


def _emit_bundles(
    ops: List[VliwOp],
    scheduled_bundle: List[Optional[int]],
    speculative_candidates: Set[int],
    relaxed_mem: List[List[int]],
) -> Tuple[List[Bundle], Set[int]]:
    """Materialise the final bundles from the placement.

    Runtime order within a bundle is program (node) order, so a load is
    *truly* speculative only when a store it depends on lands in a
    strictly later bundle (a same-bundle store executes first in slot
    order — node indices of its MEM predecessors are always smaller).
    Each truly speculative load gets an MCB tag, and the last store it
    bypassed becomes its *release point*: classic MCB semantics, where an
    entry lives exactly until all stores it was moved above have checked
    against it.  Empty bundles are dropped — the run-time scoreboard
    recreates any real stall they stood for.
    """
    final_tags: Dict[int, int] = {}
    releases: Dict[int, List[int]] = {}
    next_tag = 1
    for node in sorted(speculative_candidates):
        bundle = scheduled_bundle[node]
        bypassed = [
            store for store in relaxed_mem[node]
            if scheduled_bundle[store] > bundle
        ]
        if not bypassed:
            continue  # every "bypassed" store actually executes first
        release_store = max(
            bypassed, key=lambda store: (scheduled_bundle[store], store),
        )
        final_tags[node] = next_tag
        releases.setdefault(release_store, []).append(next_tag)
        next_tag += 1

    by_bundle: Dict[int, List[int]] = {}
    for node, bundle in enumerate(scheduled_bundle):
        by_bundle.setdefault(bundle, []).append(node)
    bundles: List[Bundle] = []
    for bundle_index in sorted(by_bundle):
        row: List[VliwOp] = []
        for node in sorted(by_bundle[bundle_index]):
            op = ops[node]
            if node in final_tags:
                op = op.as_speculative(final_tags[node])
            elif node in releases:
                op = op.with_releases(tuple(releases[node]))
            row.append(op)
        bundles.append(Bundle(ops=tuple(row)))
    return bundles, set(final_tags)
