"""The DBT engine: translation, profiling, optimization, mitigation.

Orchestrates the whole software side of the platform, in the same shape
as Hybrid-DBT:

1. **first pass** — cold code is translated basic block by basic block,
   naively (no reordering, no speculation), and installed in the
   translation cache;
2. **profiling** — every executed block and conditional-branch outcome
   is recorded;
3. **optimization** — when a first-pass block crosses the hotness
   threshold, the engine grows a superblock along the biased path,
   lowers it to IR, runs the security pass dictated by the mitigation
   policy (GhostBusters poisoning / fence / nothing), schedules it with
   the speculation the policy allows, and installs the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..isa.program import Program
from ..obs.observer import Observer, maybe_phase
from ..security.mitigation import MitigationResult, apply_fence, apply_ghostbusters
from ..security.poison import PoisonReport, analyze_block
from ..security.policy import MitigationPolicy
from ..vliw.block import TranslatedBlock
from ..vliw.config import VliwConfig
from ..vliw.fastpath import finalize_block
from ..vliw.pipeline import BlockResult, ExitReason
from .blocks import BasicBlock, discover_block
from .codegen import sequential_translate
from .ir import IRBlock
from .irbuilder import build_ir
from .chaining import ChainIndex
from .pool import superblock_key
from .profile import ExecutionProfile
from .scheduler import SchedulerOptions, schedule_block
from .superblock import SuperblockLimits, build_superblock
from .translation_cache import TranslationCache


@dataclass
class DbtEngineConfig:
    """Engine tunables."""

    #: Executions of a first-pass block before it is optimized.
    hot_threshold: int = 16
    superblock: SuperblockLimits = field(default_factory=SuperblockLimits)
    #: Upper bound on optimizations (safety valve for pathological code).
    max_optimizations: int = 10_000
    #: Adaptive re-translation (extension, after Hybrid-DBT's memory
    #: speculation work): when an optimized block triggers this many MCB
    #: rollbacks, rebuild it *without* memory speculation — chronic
    #: conflicts mean the speculation never pays.  ``None`` disables the
    #: mechanism, matching the platform evaluated in the paper.
    conflict_retranslate_threshold: Optional[int] = None
    #: Code-cache capacity in blocks (None = unbounded).  A full cache is
    #: flushed wholesale, as real DBT code caches are.
    code_cache_capacity: Optional[int] = None
    #: What happens when the capacity limit is hit: ``"flush"`` (seed
    #: behavior, wholesale flush) or ``"lru"`` (tiered partial
    #: eviction of the least-recently-used translation).
    code_cache_policy: str = "flush"
    #: Chain installed translations block→block so the dispatcher skips
    #: the engine round trip (bit-identical to the seed loop; see
    #: :mod:`repro.dbt.chaining`).
    chain: bool = False
    #: When a host tier compiles: ``"eager"`` (at install, the seed
    #: behavior) or ``"auto"`` (profile-driven background promotion via
    #: :class:`~repro.dbt.tiering.TierController` — small kernels stay
    #: on the fast interpreter automatically).  Host-side only: the
    #: choice can never change a simulated observable.
    tier_mode: str = "eager"


@dataclass
class DbtEngineStats:
    """Lifetime counters of the engine."""

    first_pass_translations: int = 0
    optimizations: int = 0
    guest_instructions_translated: int = 0
    spectre_patterns_detected: int = 0
    mitigation_edges_added: int = 0
    speculative_loads_emitted: int = 0
    conflict_retranslations: int = 0


class DbtEngine:
    """Software dynamic binary translator targeting the VLIW core."""

    def __init__(
        self,
        program: Program,
        vliw_config: Optional[VliwConfig] = None,
        policy: MitigationPolicy = MitigationPolicy.UNSAFE,
        config: Optional[DbtEngineConfig] = None,
    ):
        self.program = program
        self.vliw_config = vliw_config or VliwConfig()
        self.policy = policy
        self.config = config or DbtEngineConfig()
        self.cache = TranslationCache(
            capacity=self.config.code_cache_capacity,
            finalizer=lambda block: finalize_block(block, self.vliw_config),
            capacity_policy=self.config.code_cache_policy,
        )
        #: Successor links between installed translations; the cache
        #: unlinks through this on every mutation.  ``None`` when
        #: chaining is off keeps every seed code path untouched.
        self.chains: Optional[ChainIndex] = (
            ChainIndex() if self.config.chain else None)
        self.cache.chains = self.chains
        # Scope per-translation bookkeeping (poison reports, rollback
        # counts) to the cache's actual contents: evictions and flushes
        # must not leave stale entries behind.
        self.cache.evict_listeners.append(self._forget_translation)
        self.cache.flush_listeners.append(self._forget_all_translations)
        self.profile = ExecutionProfile()
        self.stats = DbtEngineStats()
        #: Optional :class:`~repro.obs.observer.Observer` (set by the
        #: platform); every hook is guarded by one ``is not None`` check.
        self.observer: Optional[Observer] = None
        #: Optional :class:`~repro.resilience.supervisor.ExecutionSupervisor`
        #: (set by the platform).  When present, optimized installs pass
        #: through the legality gate and the translation cache is watched
        #: for unexpected evictions; every hook is a single ``is not
        #: None`` check, like the observer's.
        self.supervisor = None
        #: Optional :class:`~repro.dbt.pool.PoolShard` shared with other
        #: guests of the same (program, policy, config) — set by the
        #: platform when this guest joins a translation pool.
        self.pool = None
        #: Basic blocks backing each first-pass translation (profiling).
        self._basic_blocks: Dict[int, BasicBlock] = {}
        #: Poison reports per optimized entry (inspection / examples).
        self.reports: Dict[int, PoisonReport] = {}
        #: MCB rollbacks per optimized entry (adaptive re-translation).
        self._rollback_counts: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Lookup / first-pass translation.
    # ------------------------------------------------------------------

    def lookup(self, pc: int) -> TranslatedBlock:
        """Return the translation for ``pc``, first-pass translating on miss."""
        block = self.cache.lookup(pc)
        if block is None:
            if self.supervisor is not None:
                self.supervisor.note_lookup_miss(pc, self.cache)
            with maybe_phase(self.observer, "translate",
                             entry="%#x" % pc, kind="firstpass"):
                block = self._translate_first_pass(pc)
            if self.observer is not None:
                self.observer.emit("block_translated", entry="%#x" % pc,
                                   guest_instructions=block.guest_length)
            self._install(block)
        return block

    def _install(self, block: TranslatedBlock) -> None:
        """Install ``block``, notifying the supervisor when one is wired."""
        self.cache.install(block)
        if self.supervisor is not None:
            self.supervisor.post_install(block, self.cache)

    def _forget_translation(self, entry: int) -> None:
        """An eviction dropped ``entry``'s translation; drop the
        bookkeeping that described it so inspection tooling never serves
        a stale poison report and the dicts stay bounded."""
        self.reports.pop(entry, None)
        self._rollback_counts.pop(entry, None)

    def _forget_all_translations(self) -> None:
        """A wholesale capacity flush dropped every translation."""
        self.reports.clear()
        self._rollback_counts.clear()

    def _active_pool(self):
        """The shared pool shard, or ``None`` when sharing is gated off.

        Sharing is enabled only for bare guests: an attached observer
        records host-side translation phases that a pool hit would skip
        (breaking merged-telemetry == serial-totals parity), and a
        supervisor's install-time gate decisions are per-guest.  A gated
        guest simply translates locally — simulated results are
        byte-identical either way; only host-side reuse is lost.
        """
        if self.observer is not None or self.supervisor is not None:
            return None
        return self.pool

    def _adopt_optimized(self, entry: int, artifact,
                         reoptimized: bool = False) -> TranslatedBlock:
        """Install a pool-shared superblock, replaying exactly the stat
        and report bookkeeping the local build would have performed, so
        engine observables stay byte-identical to an unpooled run."""
        translated, report = artifact
        if report is not None:
            self.reports[entry] = report
            self.stats.spectre_patterns_detected += report.pattern_count
        self.stats.mitigation_edges_added += translated.mitigations_applied
        if reoptimized:
            self.stats.conflict_retranslations += 1
        else:
            self.stats.optimizations += 1
        self.stats.speculative_loads_emitted += translated.speculative_loads
        self._install(translated)
        return translated

    def _translate_first_pass(self, pc: int) -> TranslatedBlock:
        pool = self._active_pool()
        if pool is not None:
            artifact = pool.lookup_firstpass(pc)
            if artifact is not None:
                translated, basic_block = artifact
                self._basic_blocks[pc] = basic_block
                self.stats.first_pass_translations += 1
                self.stats.guest_instructions_translated += basic_block.size
                return translated
        basic_block = discover_block(self.program, pc)
        self._basic_blocks[pc] = basic_block
        ir = build_ir([basic_block])
        translated = sequential_translate(ir, self.vliw_config)
        self.stats.first_pass_translations += 1
        self.stats.guest_instructions_translated += basic_block.size
        if pool is not None:
            pool.install_firstpass(pc, translated, basic_block)
        return translated

    # ------------------------------------------------------------------
    # Profiling feedback from the platform.
    # ------------------------------------------------------------------

    def record_execution(self, block: TranslatedBlock, result: BlockResult) -> None:
        """Feed one block execution back into the profile and trigger
        optimization when the block becomes hot."""
        observer = self.observer
        entry = block.guest_entry
        count = self.profile.record_block(entry)
        if observer is not None:
            observer.profile_block()
        basic_block = self._basic_blocks.get(entry)
        if basic_block is not None and basic_block.terminator.is_branch:
            targets = basic_block.branch_targets()
            if targets is not None and targets[0] != targets[1]:
                taken_target, _ = targets
                if result.reason is not ExitReason.SYSCALL:
                    self.profile.record_branch(
                        basic_block.terminator.address,
                        result.next_pc == taken_target,
                    )
                    if observer is not None:
                        observer.profile_branch()
        if (
            block.kind == "firstpass"
            and count >= self.config.hot_threshold
            and self.stats.optimizations < self.config.max_optimizations
        ):
            if observer is not None:
                observer.emit("hot_block", entry="%#x" % entry,
                              executions=count)
            self.optimize(entry)
        elif result.rolled_back:
            self._note_rollback(block)

    def _note_rollback(self, block: TranslatedBlock) -> None:
        """Adaptive response to chronic MCB conflicts (extension)."""
        threshold = self.config.conflict_retranslate_threshold
        if threshold is None or block.kind != "optimized":
            return
        entry = block.guest_entry
        count = self._rollback_counts.get(entry, 0) + 1
        self._rollback_counts[entry] = count
        if count >= threshold:
            self._rollback_counts[entry] = 0
            self.retranslate_without_memory_speculation(entry)

    def retranslate_without_memory_speculation(self, entry: int) -> TranslatedBlock:
        """Rebuild the block at ``entry`` with memory speculation off.

        The speculation clearly is not paying (each conflict costs a
        rollback plus a sequential recovery run), so the engine pins
        loads behind stores while keeping branch speculation.
        """
        observer = self.observer
        if observer is not None:
            observer.emit("conflict_retranslation", entry="%#x" % entry)
        with maybe_phase(observer, "retranslate", entry="%#x" % entry):
            plan = build_superblock(
                self.program, entry, self.profile, self.config.superblock,
            )
            pool = self._active_pool()
            pool_key = None
            if pool is not None:
                pool_key = superblock_key(
                    entry, tuple(b.entry for b in plan.path),
                    plan.final_next, "reoptimized")
                artifact = pool.lookup_optimized(pool_key)
                if artifact is not None:
                    return self._adopt_optimized(entry, artifact,
                                                 reoptimized=True)
            ir = build_ir(plan.path, plan.final_next)
            options = self.scheduler_options()
            options = SchedulerOptions(
                branch_speculation=options.branch_speculation,
                memory_speculation=False,
                max_speculative_loads=options.max_speculative_loads,
            )
            report: Optional[PoisonReport] = None
            mitigation: Optional[MitigationResult] = None
            if self.policy.analyzes_patterns:
                report = analyze_block(
                    ir,
                    branch_speculation=options.branch_speculation,
                    memory_speculation=False,
                )
                self.reports[entry] = report
                if report.has_pattern:
                    if self.policy is MitigationPolicy.GHOSTBUSTERS:
                        mitigation = apply_ghostbusters(ir, report)
                    else:
                        mitigation = apply_fence(ir, report)
            translated = schedule_block(ir, self.vliw_config, options,
                                        kind="reoptimized", observer=observer)
            if self.supervisor is not None:
                # Same install-time legality gate optimize() passes
                # through: a retranslated schedule is a new generation
                # and gets no exemption.
                translated = self.supervisor.gate_schedule(
                    entry, ir, translated, self.vliw_config,
                    lambda: schedule_block(ir, self.vliw_config, options,
                                           kind="reoptimized",
                                           observer=observer),
                    lambda: schedule_block(
                        ir, self.vliw_config,
                        SchedulerOptions(branch_speculation=False,
                                         memory_speculation=False,
                                         max_speculative_loads=0),
                        kind="reoptimized", observer=observer),
                )
            if report is not None:
                translated.spectre_patterns_found = report.pattern_count
                self.stats.spectre_patterns_detected += report.pattern_count
            if mitigation is not None:
                translated.mitigations_applied = mitigation.edges_added
                self.stats.mitigation_edges_added += mitigation.edges_added
            self.stats.conflict_retranslations += 1
            self.stats.speculative_loads_emitted += translated.speculative_loads
            if observer is not None and translated.speculative_loads:
                observer.emit("spec_load_emitted", entry="%#x" % entry,
                              count=translated.speculative_loads)
            if pool is not None:
                pool.install_optimized(pool_key, translated, report)
            self._install(translated)
        return translated

    # ------------------------------------------------------------------
    # Optimization (superblock + policy passes + scheduling).
    # ------------------------------------------------------------------

    def scheduler_options(self) -> SchedulerOptions:
        """Scheduler freedom allowed by the active policy."""
        speculate = self.policy.speculation_enabled
        return SchedulerOptions(
            branch_speculation=speculate,
            memory_speculation=speculate,
            max_speculative_loads=self.vliw_config.mcb_entries,
        )

    def optimize(self, entry: int) -> TranslatedBlock:
        """Build, secure, schedule and install the superblock at ``entry``."""
        observer = self.observer
        with maybe_phase(observer, "optimize", entry="%#x" % entry):
            with maybe_phase(observer, "superblock", entry="%#x" % entry):
                plan = build_superblock(
                    self.program, entry, self.profile, self.config.superblock,
                )
            pool = self._active_pool()
            pool_key = None
            if pool is not None:
                # Key on the profile-discovered path: a hit is only
                # valid if another guest built this exact superblock.
                pool_key = superblock_key(
                    entry, tuple(b.entry for b in plan.path),
                    plan.final_next, "optimized")
                artifact = pool.lookup_optimized(pool_key)
                if artifact is not None:
                    return self._adopt_optimized(entry, artifact)
            with maybe_phase(observer, "irbuild", entry="%#x" % entry):
                ir = build_ir(plan.path, plan.final_next)
            report: Optional[PoisonReport] = None
            mitigation: Optional[MitigationResult] = None
            options = self.scheduler_options()

            if self.policy.analyzes_patterns:
                with maybe_phase(observer, "poison_analysis",
                                 entry="%#x" % entry):
                    report = analyze_block(
                        ir,
                        branch_speculation=options.branch_speculation,
                        memory_speculation=options.memory_speculation,
                    )
                self.reports[entry] = report
                if report.has_pattern:
                    if observer is not None:
                        for access in report.flagged:
                            observer.emit(
                                "spectre_pattern_detected",
                                entry="%#x" % entry,
                                guest_address="%#x" % access.guest_address,
                                address_register=access.address_register,
                            )
                    with maybe_phase(observer, "mitigation",
                                     entry="%#x" % entry,
                                     policy=self.policy.value):
                        if self.policy is MitigationPolicy.GHOSTBUSTERS:
                            mitigation = apply_ghostbusters(ir, report)
                        else:
                            mitigation = apply_fence(ir, report)

            translated = schedule_block(ir, self.vliw_config, options,
                                        observer=observer)
            if self.supervisor is not None:
                translated = self.supervisor.gate_schedule(
                    entry, ir, translated, self.vliw_config,
                    lambda: schedule_block(ir, self.vliw_config, options,
                                           observer=observer),
                    lambda: schedule_block(
                        ir, self.vliw_config,
                        SchedulerOptions(branch_speculation=False,
                                         memory_speculation=False,
                                         max_speculative_loads=0),
                        observer=observer),
                )
            if report is not None:
                translated.spectre_patterns_found = report.pattern_count
                self.stats.spectre_patterns_detected += report.pattern_count
            if mitigation is not None:
                translated.mitigations_applied = mitigation.edges_added
                self.stats.mitigation_edges_added += mitigation.edges_added
            self.stats.optimizations += 1
            self.stats.speculative_loads_emitted += translated.speculative_loads
            if observer is not None and translated.speculative_loads:
                observer.emit("spec_load_emitted", entry="%#x" % entry,
                              count=translated.speculative_loads)
            if pool is not None:
                pool.install_optimized(pool_key, translated, report)
            self._install(translated)
        return translated

    # ------------------------------------------------------------------
    # Inspection.
    # ------------------------------------------------------------------

    def build_ir_for(self, entry: int) -> IRBlock:
        """IR of the superblock the engine would build at ``entry`` now
        (diagnostics; does not install anything)."""
        plan = build_superblock(
            self.program, entry, self.profile, self.config.superblock,
        )
        return build_ir(plan.path, plan.final_next)
