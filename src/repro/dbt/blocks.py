"""Guest basic-block discovery.

The DBT engine's first stage scans the guest binary from an entry point
and cuts it into single-entry single-exit basic blocks.  A block ends at
the first control-flow instruction (conditional branch, jump, indirect
jump) or at an ``ecall``/``ebreak``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..isa.instruction import Instruction
from ..isa.opcodes import Mnemonic
from ..isa.program import Program

#: Safety bound: a basic block longer than this indicates a runaway scan
#: (e.g. falling through into data).
MAX_BLOCK_INSTRUCTIONS = 4096


class BlockDiscoveryError(Exception):
    """Raised when a block cannot be delimited."""


@dataclass
class BasicBlock:
    """A guest basic block."""

    entry: int
    instructions: List[Instruction]

    @property
    def size(self) -> int:
        return len(self.instructions)

    @property
    def terminator(self) -> Instruction:
        return self.instructions[-1]

    @property
    def fallthrough(self) -> int:
        """Guest address immediately after the block."""
        return self.entry + 4 * len(self.instructions)

    def successors(self) -> Tuple[Optional[int], ...]:
        """Static successor addresses (None for indirect / syscall)."""
        term = self.terminator
        if term.is_branch:
            taken = term.address + term.imm
            return (taken, self.fallthrough)
        if term.mnemonic is Mnemonic.JAL:
            return (term.address + term.imm,)
        if term.mnemonic is Mnemonic.JALR:
            return (None,)
        if term.mnemonic in (Mnemonic.ECALL, Mnemonic.EBREAK):
            return (self.fallthrough,)
        return (self.fallthrough,)

    def branch_targets(self) -> Optional[Tuple[int, int]]:
        """(taken, fallthrough) when the block ends in a conditional branch."""
        term = self.terminator
        if term.is_branch:
            return (term.address + term.imm, self.fallthrough)
        return None


def discover_block(program: Program, entry: int) -> BasicBlock:
    """Scan a basic block starting at ``entry``."""
    if not program.contains_text(entry):
        raise BlockDiscoveryError("block entry %#x outside text image" % entry)
    instructions: List[Instruction] = []
    pc = entry
    while True:
        if len(instructions) >= MAX_BLOCK_INSTRUCTIONS:
            raise BlockDiscoveryError(
                "basic block at %#x exceeds %d instructions"
                % (entry, MAX_BLOCK_INSTRUCTIONS)
            )
        if not program.contains_text(pc):
            raise BlockDiscoveryError(
                "fell off the text image at %#x (block %#x)" % (pc, entry)
            )
        inst = program.instruction_at(pc)
        instructions.append(inst)
        if inst.is_control_flow or inst.is_system:
            break
        pc += 4
    return BasicBlock(entry=entry, instructions=instructions)
