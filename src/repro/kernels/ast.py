"""Kernel DSL abstract syntax.

The paper benchmarks Polybench kernels compiled to RISC-V.  With no
cross-compiler available offline, this package provides a deliberately
small loop-nest language and a compiler to guest assembly
(:mod:`repro.kernels.compiler`).  The language covers everything the
Polybench subset needs: integer scalars, multi-dimensional arrays
(linearised by the kernel definitions), ``for`` loops, loads/stores, and
raw address loads for the pointer-table (double indirection) matrix
representation of Section V-B.

All values are 64-bit integers — the guest ISA is rv64im, so the
floating-point Polybench kernels are reinterpreted over int64 (documented
substitution; the memory/ILP structure, which is what drives the DBT's
speculation, is unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions.
# ---------------------------------------------------------------------------

class Expr:
    """Base class of DSL expressions."""

    __slots__ = ()

    def __add__(self, other: "ExprLike") -> "Bin":
        return Bin("+", self, wrap(other))

    def __radd__(self, other: "ExprLike") -> "Bin":
        return Bin("+", wrap(other), self)

    def __sub__(self, other: "ExprLike") -> "Bin":
        return Bin("-", self, wrap(other))

    def __rsub__(self, other: "ExprLike") -> "Bin":
        return Bin("-", wrap(other), self)

    def __mul__(self, other: "ExprLike") -> "Bin":
        return Bin("*", self, wrap(other))

    def __rmul__(self, other: "ExprLike") -> "Bin":
        return Bin("*", wrap(other), self)

    def __truediv__(self, other: "ExprLike") -> "Bin":
        return Bin("/", self, wrap(other))

    def __floordiv__(self, other: "ExprLike") -> "Bin":
        return Bin("/", self, wrap(other))

    def __mod__(self, other: "ExprLike") -> "Bin":
        return Bin("%", self, wrap(other))

    def __lshift__(self, other: "ExprLike") -> "Bin":
        return Bin("<<", self, wrap(other))

    def __rshift__(self, other: "ExprLike") -> "Bin":
        return Bin(">>", self, wrap(other))

    def __and__(self, other: "ExprLike") -> "Bin":
        return Bin("&", self, wrap(other))

    def __or__(self, other: "ExprLike") -> "Bin":
        return Bin("|", self, wrap(other))

    def __xor__(self, other: "ExprLike") -> "Bin":
        return Bin("^", self, wrap(other))


ExprLike = Union[Expr, int]


def wrap(value: ExprLike) -> Expr:
    """Lift plain ints to :class:`Const`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, int):
        return Const(value)
    raise TypeError("cannot use %r in a kernel expression" % (value,))


@dataclass(frozen=True)
class Const(Expr):
    """Integer literal."""

    value: int


@dataclass(frozen=True)
class Var(Expr):
    """Scalar variable (register-allocated by the compiler)."""

    name: str


@dataclass(frozen=True)
class Bin(Expr):
    """Binary operation.  ``op`` in ``+ - * / % << >> & | ^``."""

    op: str
    left: Expr
    right: Expr

    _OPS = frozenset({"+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^"})

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError("unknown binary op: %r" % self.op)


@dataclass(frozen=True)
class Load(Expr):
    """``array[index]`` — element load from a declared array."""

    array: str
    index: Expr
    width: int = 8
    signed: bool = True


@dataclass(frozen=True)
class LoadAt(Expr):
    """``*(address)`` — raw load; the double-indirection primitive."""

    address: Expr
    width: int = 8
    signed: bool = True


@dataclass(frozen=True)
class AddrOf(Expr):
    """``&array[index]`` (index defaults to 0)."""

    array: str
    index: Expr = Const(0)


# ---------------------------------------------------------------------------
# Statements.
# ---------------------------------------------------------------------------

class Stmt:
    """Base class of DSL statements."""

    __slots__ = ()


@dataclass(frozen=True)
class Let(Stmt):
    """``name = expr`` — define or update a scalar."""

    name: str
    expr: Expr


@dataclass(frozen=True)
class Store(Stmt):
    """``array[index] = value``."""

    array: str
    index: Expr
    value: Expr
    width: int = 8


@dataclass(frozen=True)
class StoreAt(Stmt):
    """``*(address) = value`` — raw store."""

    address: Expr
    value: Expr
    width: int = 8


@dataclass(frozen=True)
class For(Stmt):
    """``for var in range(start, end, step): body``.

    ``start`` and ``step`` must be constants; ``end`` a constant or a
    scalar — enough for the Polybench loop nests while keeping the
    compiler's register allocation trivial.
    """

    var: str
    start: int
    end: ExprLike
    body: Tuple[Stmt, ...]
    step: int = 1

    def __post_init__(self) -> None:
        if self.step == 0:
            raise ValueError("loop step must be non-zero")
        end = self.end
        if not isinstance(end, (int, Var)):
            raise ValueError("loop end must be a constant or a Var")


def loop(var: str, start: int, end: ExprLike, body: Sequence[Stmt], step: int = 1) -> For:
    """Convenience constructor for :class:`For`."""
    return For(var=var, start=start, end=end, body=tuple(body), step=step)


@dataclass(frozen=True)
class Compare:
    """A comparison for :class:`If`: ``left OP right``.

    ``op`` in ``< <= == != > >=`` (signed) or ``u< u>=`` (unsigned).
    """

    op: str
    left: Expr
    right: Expr

    _OPS = frozenset({"<", "<=", "==", "!=", ">", ">=", "u<", "u>="})

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError("unknown comparison: %r" % self.op)


@dataclass(frozen=True)
class If(Stmt):
    """``if cond: then else: orelse`` — a real guest branch.

    Conditionals in kernels create the biased in-trace branches the DBT
    engine speculates across (Section III-A): when one arm strongly
    dominates, the superblock follows it and hoists its loads above the
    guard.
    """

    cond: Compare
    then: Tuple[Stmt, ...]
    orelse: Tuple[Stmt, ...] = ()


def when(op: str, left: ExprLike, right: ExprLike,
         then: Sequence[Stmt], orelse: Sequence[Stmt] = ()) -> If:
    """Convenience constructor for :class:`If`."""
    return If(cond=Compare(op, wrap(left), wrap(right)),
              then=tuple(then), orelse=tuple(orelse))


# ---------------------------------------------------------------------------
# Kernel container.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ArrayDecl:
    """One statically allocated array.

    ``init`` entries may be ints or ``(symbol, addend)`` pairs — the
    latter become ``.dword symbol+addend`` (pointer tables).
    """

    name: str
    length: int
    elem_size: int = 8
    init: Optional[Tuple[Union[int, Tuple[str, int]], ...]] = None
    align: int = 6  # log2 alignment; default cache-line aligned

    def __post_init__(self) -> None:
        if self.elem_size not in (1, 2, 4, 8):
            raise ValueError("bad element size: %r" % self.elem_size)
        if self.init is not None and len(self.init) > self.length:
            raise ValueError(
                "array %s: %d initialisers for %d elements"
                % (self.name, len(self.init), self.length)
            )

    @property
    def size_bytes(self) -> int:
        return self.length * self.elem_size


@dataclass(frozen=True)
class Kernel:
    """A complete kernel: arrays, body, and a checksum expression whose
    low 7 bits become the guest's exit code (the correctness oracle)."""

    name: str
    arrays: Tuple[ArrayDecl, ...]
    body: Tuple[Stmt, ...]
    result: Expr

    def array(self, name: str) -> ArrayDecl:
        for decl in self.arrays:
            if decl.name == name:
                return decl
        raise KeyError("kernel %s has no array %r" % (self.name, name))
