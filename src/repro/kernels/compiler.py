"""Kernel DSL compiler: loop-nest AST -> guest assembly -> Program.

A deliberately simple one-pass code generator:

* every scalar (loop variable or ``Let`` target) lives in a dedicated
  callee register for the whole kernel (no spilling — kernels are small
  loop nests);
* every array base is preloaded into a register at kernel entry;
* expressions evaluate into a small stack of caller-saved temporaries;
* the kernel's ``result`` expression, masked to 7 bits, becomes the
  guest exit code — the cross-checkable checksum.

The generated code is ordinary scalar RISC-V, exactly the shape a ``-O1``
compiler would emit for Polybench loop nests: address arithmetic, loads,
a multiply-accumulate, a store, a counted back edge.  All scheduling and
speculation then happens in the DBT engine, as on the paper's platform.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..isa.assembler import assemble
from ..isa.program import Program
from .ast import (
    AddrOf,
    ArrayDecl,
    Bin,
    Compare,
    Const,
    Expr,
    For,
    If,
    Kernel,
    Let,
    Load,
    LoadAt,
    Stmt,
    Store,
    StoreAt,
    Var,
)


class CompileError(Exception):
    """Raised on register exhaustion or malformed kernels."""


#: Registers for scalars and array bases (callee-saved + spare args).
_VAR_POOL = (
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6",
)
#: Expression-evaluation temporaries.
_TEMP_POOL = ("t0", "t1", "t2", "t3", "t4", "t5", "t6")

_WIDTH_LOAD = {1: "lbu", 2: "lhu", 4: "lw", 8: "ld"}
_WIDTH_LOAD_SIGNED = {1: "lb", 2: "lh", 4: "lw", 8: "ld"}
_WIDTH_STORE = {1: "sb", 2: "sh", 4: "sw", 8: "sd"}
_WIDTH_DIRECTIVE = {1: ".byte", 2: ".half", 4: ".word", 8: ".dword"}

_BIN_INSTRUCTION = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
    "<<": "sll", ">>": "srl", "&": "and", "|": "or", "^": "xor",
}


class _Temps:
    """LIFO pool of expression temporaries."""

    def __init__(self) -> None:
        self._free = list(_TEMP_POOL)

    def acquire(self) -> str:
        if not self._free:
            raise CompileError("expression too deep: temporaries exhausted")
        return self._free.pop(0)

    def release(self, reg: str) -> None:
        if reg in _TEMP_POOL and reg not in self._free:
            self._free.insert(0, reg)


class KernelCompiler:
    """Compiles one :class:`Kernel` to assembly text."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self._lines: List[str] = []
        self._vars: Dict[str, str] = {}
        self._bases: Dict[str, str] = {}
        self._pool = list(_VAR_POOL)
        self._labels = itertools.count()
        self._temps = _Temps()

    # ------------------------------------------------------------------
    # Register management.
    # ------------------------------------------------------------------

    def _allocate(self, what: str) -> str:
        if not self._pool:
            raise CompileError(
                "kernel %s: out of scalar registers at %s"
                % (self.kernel.name, what)
            )
        return self._pool.pop(0)

    def _var_reg(self, name: str) -> str:
        reg = self._vars.get(name)
        if reg is None:
            reg = self._allocate("variable %r" % name)
            self._vars[name] = reg
        return reg

    def _base_reg(self, array: str) -> str:
        try:
            return self._bases[array]
        except KeyError:
            raise CompileError(
                "kernel %s references undeclared array %r"
                % (self.kernel.name, array)
            ) from None

    def _array_decl(self, array: str) -> ArrayDecl:
        try:
            return self.kernel.array(array)
        except KeyError:
            raise CompileError(
                "kernel %s references undeclared array %r"
                % (self.kernel.name, array)
            ) from None

    # ------------------------------------------------------------------
    # Emission helpers.
    # ------------------------------------------------------------------

    def _emit(self, text: str) -> None:
        self._lines.append("    " + text)

    def _label(self, prefix: str) -> str:
        return "%s_%d" % (prefix, next(self._labels))

    def _place_label(self, label: str) -> None:
        self._lines.append(label + ":")

    # ------------------------------------------------------------------
    # Expressions.
    # ------------------------------------------------------------------

    def _compile_expr(self, expr: Expr) -> Tuple[str, bool]:
        """Compile ``expr``; returns (register, is_temporary)."""
        if isinstance(expr, Const):
            reg = self._temps.acquire()
            self._emit("li %s, %d" % (reg, expr.value))
            return reg, True
        if isinstance(expr, Var):
            if expr.name not in self._vars:
                raise CompileError("use of undefined variable %r" % expr.name)
            return self._vars[expr.name], False
        if isinstance(expr, Bin):
            return self._compile_bin(expr)
        if isinstance(expr, Load):
            return self._compile_load(expr)
        if isinstance(expr, LoadAt):
            address, addr_temp = self._compile_expr(expr.address)
            dest = address if addr_temp else self._temps.acquire()
            table = _WIDTH_LOAD_SIGNED if expr.signed else _WIDTH_LOAD
            self._emit("%s %s, 0(%s)" % (table[expr.width], dest, address))
            return dest, True
        if isinstance(expr, AddrOf):
            dest = self._temps.acquire()
            decl = self._array_decl(expr.array)
            index, index_temp = self._compile_expr(expr.index)
            shift = decl.elem_size.bit_length() - 1
            if shift:
                self._emit("slli %s, %s, %d" % (dest, index, shift))
                self._emit("add %s, %s, %s" % (dest, self._base_reg(expr.array), dest))
            else:
                self._emit("add %s, %s, %s" % (dest, self._base_reg(expr.array), index))
            if index_temp:
                self._temps.release(index)
            return dest, True
        raise CompileError("cannot compile expression %r" % (expr,))

    def _compile_bin(self, expr: Bin) -> Tuple[str, bool]:
        immediate = self._try_immediate_form(expr)
        if immediate is not None:
            return immediate
        left, left_temp = self._compile_expr(expr.left)
        right, right_temp = self._compile_expr(expr.right)
        dest = left if left_temp else (right if right_temp else self._temps.acquire())
        self._emit("%s %s, %s, %s" % (_BIN_INSTRUCTION[expr.op], dest, left, right))
        if left_temp and dest != left:
            self._temps.release(left)
        if right_temp and dest != right:
            self._temps.release(right)
        return dest, True

    def _try_immediate_form(self, expr: Bin) -> Optional[Tuple[str, bool]]:
        """Peephole: use RISC-V immediate instructions for constant RHS
        (and strength-reduce multiplies by powers of two to shifts)."""
        if not isinstance(expr.right, Const):
            return None
        value = expr.right.value
        op = expr.op
        mnemonic: Optional[str] = None
        imm = value
        if op == "+" and -2048 <= value <= 2047:
            mnemonic = "addi"
        elif op == "-" and -2047 <= value <= 2048:
            mnemonic, imm = "addi", -value
        elif op == "<<" and 0 <= value <= 63:
            mnemonic = "slli"
        elif op == ">>" and 0 <= value <= 63:
            mnemonic = "srli"
        elif op == "&" and -2048 <= value <= 2047:
            mnemonic = "andi"
        elif op == "|" and -2048 <= value <= 2047:
            mnemonic = "ori"
        elif op == "^" and -2048 <= value <= 2047:
            mnemonic = "xori"
        elif op == "*" and value > 0 and value & (value - 1) == 0:
            mnemonic, imm = "slli", value.bit_length() - 1
        if mnemonic is None:
            return None
        left, left_temp = self._compile_expr(expr.left)
        dest = left if left_temp else self._temps.acquire()
        self._emit("%s %s, %s, %d" % (mnemonic, dest, left, imm))
        return dest, True

    def _compile_load(self, expr: Load) -> Tuple[str, bool]:
        decl = self._array_decl(expr.array)
        index, index_temp = self._compile_expr(expr.index)
        address = index if index_temp else self._temps.acquire()
        shift = decl.elem_size.bit_length() - 1
        if shift:
            self._emit("slli %s, %s, %d" % (address, index, shift))
            self._emit("add %s, %s, %s" % (address, self._base_reg(expr.array), address))
        else:
            self._emit("add %s, %s, %s" % (address, self._base_reg(expr.array), index))
        table = _WIDTH_LOAD_SIGNED if expr.signed else _WIDTH_LOAD
        self._emit("%s %s, 0(%s)" % (table[expr.width], address, address))
        return address, True

    def _element_address(self, array: str, index: Expr) -> str:
        """Compute &array[index] into a fresh temp."""
        decl = self._array_decl(array)
        index_reg, index_temp = self._compile_expr(index)
        address = index_reg if index_temp else self._temps.acquire()
        shift = decl.elem_size.bit_length() - 1
        if shift:
            self._emit("slli %s, %s, %d" % (address, index_reg, shift))
            self._emit("add %s, %s, %s" % (address, self._base_reg(array), address))
        else:
            self._emit("add %s, %s, %s" % (address, self._base_reg(array), index_reg))
        return address

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------

    def _compile_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Let):
            value, value_temp = self._compile_expr(stmt.expr)
            home = self._var_reg(stmt.name)
            if value != home:
                self._emit("mv %s, %s" % (home, value))
            if value_temp:
                self._temps.release(value)
        elif isinstance(stmt, Store):
            value, value_temp = self._compile_expr(stmt.value)
            address = self._element_address(stmt.array, stmt.index)
            self._emit("%s %s, 0(%s)" % (_WIDTH_STORE[stmt.width], value, address))
            self._temps.release(address)
            if value_temp:
                self._temps.release(value)
        elif isinstance(stmt, StoreAt):
            value, value_temp = self._compile_expr(stmt.value)
            address, addr_temp = self._compile_expr(stmt.address)
            self._emit("%s %s, 0(%s)" % (_WIDTH_STORE[stmt.width], value, address))
            if addr_temp:
                self._temps.release(address)
            if value_temp:
                self._temps.release(value)
        elif isinstance(stmt, For):
            self._compile_for(stmt)
        elif isinstance(stmt, If):
            self._compile_if(stmt)
        else:
            raise CompileError("cannot compile statement %r" % (stmt,))

    #: Comparison -> branch taken when the comparison is FALSE.
    _INVERSE_BRANCH = {
        "<": "bge", "<=": "bgt", "==": "bne", "!=": "beq",
        ">": "ble", ">=": "blt", "u<": "bgeu", "u>=": "bltu",
    }

    def _compile_if(self, stmt: If) -> None:
        left, left_temp = self._compile_expr(stmt.cond.left)
        right, right_temp = self._compile_expr(stmt.cond.right)
        else_label = self._label("else")
        end_label = self._label("endif")
        self._emit("%s %s, %s, %s" % (
            self._INVERSE_BRANCH[stmt.cond.op], left, right,
            else_label if stmt.orelse else end_label,
        ))
        if left_temp:
            self._temps.release(left)
        if right_temp:
            self._temps.release(right)
        for inner in stmt.then:
            self._compile_stmt(inner)
        if stmt.orelse:
            self._emit("j %s" % end_label)
            self._place_label(else_label)
            for inner in stmt.orelse:
                self._compile_stmt(inner)
        self._place_label(end_label)

    def _compile_for(self, stmt: For) -> None:
        var = self._var_reg(stmt.var)
        head = self._label("loop_%s" % stmt.var)
        done = self._label("done_%s" % stmt.var)
        self._emit("li %s, %d" % (var, stmt.start))
        self._place_label(head)
        # Guard at the top so zero-trip loops are handled.
        limit = self._loop_limit(stmt)
        if stmt.step > 0:
            self._emit("bge %s, %s, %s" % (var, limit[0], done))
        else:
            self._emit("ble %s, %s, %s" % (var, limit[0], done))
        if limit[1]:
            self._temps.release(limit[0])
        for inner in stmt.body:
            self._compile_stmt(inner)
        self._emit("addi %s, %s, %d" % (var, var, stmt.step))
        self._emit("j %s" % head)
        self._place_label(done)

    def _loop_limit(self, stmt: For) -> Tuple[str, bool]:
        end = stmt.end
        if isinstance(end, int):
            reg = self._temps.acquire()
            self._emit("li %s, %d" % (reg, end))
            return reg, True
        if isinstance(end, Var):
            if end.name not in self._vars:
                raise CompileError("loop bound uses undefined variable %r" % end.name)
            return self._vars[end.name], False
        raise CompileError("unsupported loop bound %r" % (end,))

    # ------------------------------------------------------------------
    # Top level.
    # ------------------------------------------------------------------

    def compile(self) -> str:
        """Produce the full assembly text."""
        kernel = self.kernel
        self._lines = []
        self._lines.append("# kernel: %s (generated by repro.kernels.compiler)" % kernel.name)
        self._lines.append("_start:")
        for decl in kernel.arrays:
            base = self._allocate("base of array %r" % decl.name)
            self._bases[decl.name] = base
            self._emit("la %s, %s" % (base, decl.name))
        for stmt in kernel.body:
            self._compile_stmt(stmt)
        value, value_temp = self._compile_expr(kernel.result)
        self._emit("andi a0, %s, 0x7f" % value)
        if value_temp:
            self._temps.release(value)
        self._emit("li a7, 93")
        self._emit("ecall")
        self._lines.append(".data")
        for decl in kernel.arrays:
            self._emit_array(decl)
        return "\n".join(self._lines) + "\n"

    def _emit_array(self, decl: ArrayDecl) -> None:
        self._lines.append(".align %d" % decl.align)
        self._lines.append("%s:" % decl.name)
        directive = _WIDTH_DIRECTIVE[decl.elem_size]
        initialised = 0
        if decl.init:
            for entry in decl.init:
                if isinstance(entry, tuple):
                    symbol, addend = entry
                    if decl.elem_size != 8:
                        raise CompileError("pointer entries need 8-byte elements")
                    if addend:
                        self._lines.append("    .dword %s+%d" % (symbol, addend))
                    else:
                        self._lines.append("    .dword %s" % symbol)
                else:
                    mask = (1 << (decl.elem_size * 8)) - 1
                    self._lines.append("    %s %d" % (directive, entry & mask))
            initialised = len(decl.init)
        remaining = (decl.length - initialised) * decl.elem_size
        if remaining:
            self._lines.append("    .space %d" % remaining)


def compile_kernel(kernel: Kernel) -> str:
    """Kernel -> assembly text."""
    return KernelCompiler(kernel).compile()


def build_kernel_program(kernel: Kernel) -> Program:
    """Kernel -> linked guest Program."""
    return assemble(compile_kernel(kernel))
