"""Polybench-style workloads for the Figure 4 experiment.

The paper benchmarks data-intensive Polybench applications ("DBT
processors are more efficient on data-intensive applications").  This
module defines the corresponding loop nests in the kernel DSL, over
int64 data (the guest ISA is rv64im — documented substitution; the
memory/ILP structure that drives the DBT's speculation is preserved).

Each entry also computes a checksum over its outputs whose low 7 bits
become the guest exit code, giving every benchmark run an end-to-end
correctness oracle against the reference interpreter.

``matmul_ptr`` is the Section V-B ablation: the same matrix multiply with
the 2D arrays represented as arrays of row pointers, creating the double
indirection (load feeding a load's address) that triggers the Spectre
pattern detector.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from .ast import (
    ArrayDecl,
    Const,
    Kernel,
    Let,
    Load,
    LoadAt,
    Store,
    StoreAt,
    Var,
    loop,
    when,
)


def _values(count: int, seed: int, bound: int = 9) -> Tuple[int, ...]:
    """Deterministic small positive values (LCG), 1..bound."""
    state = seed or 1
    out: List[int] = []
    for _ in range(count):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        out.append(1 + state % bound)
    return tuple(out)


def _checksum_over(array: str, length: int) -> Tuple:
    """Statements accumulating ``chk`` over one array."""
    return (
        loop("t", 0, length, [
            Let("chk", Var("chk") + Load(array, Var("t"))),
        ]),
    )


# ---------------------------------------------------------------------------
# Kernels.  Default sizes are chosen so a full 4-policy comparison of the
# whole suite runs in minutes on the Python platform; pass a smaller
# ``scale`` for quick tests.
# ---------------------------------------------------------------------------

def gemm(n: int = 12) -> Kernel:
    """C = alpha*A*B + beta*C."""
    i, j, k = Var("i"), Var("j"), Var("k")
    return Kernel(
        name="gemm",
        arrays=(
            ArrayDecl("A", n * n, init=_values(n * n, 11)),
            ArrayDecl("B", n * n, init=_values(n * n, 23)),
            ArrayDecl("C", n * n, init=_values(n * n, 37)),
        ),
        body=(
            loop("i", 0, n, [
                loop("j", 0, n, [
                    Let("acc", Const(0)),
                    loop("k", 0, n, [
                        Let("acc", Var("acc") + Load("A", i * n + k) * Load("B", k * n + j)),
                    ]),
                    Store("C", i * n + j, Load("C", i * n + j) * 2 + Var("acc") * 3),
                ]),
            ]),
            Let("chk", Const(0)),
        ) + _checksum_over("C", n * n),
        result=Var("chk"),
    )


def two_mm(n: int = 10) -> Kernel:
    """D = A*B, then E = D*C (Polybench 2mm, int variant)."""
    i, j, k = Var("i"), Var("j"), Var("k")

    def matmul(dst: str, lhs: str, rhs: str) -> Tuple:
        return (
            loop("i", 0, n, [
                loop("j", 0, n, [
                    Let("acc", Const(0)),
                    loop("k", 0, n, [
                        Let("acc", Var("acc") + Load(lhs, i * n + k) * Load(rhs, k * n + j)),
                    ]),
                    Store(dst, i * n + j, Var("acc")),
                ]),
            ]),
        )

    return Kernel(
        name="2mm",
        arrays=(
            ArrayDecl("A", n * n, init=_values(n * n, 3)),
            ArrayDecl("B", n * n, init=_values(n * n, 5)),
            ArrayDecl("C", n * n, init=_values(n * n, 7)),
            ArrayDecl("D", n * n),
            ArrayDecl("E", n * n),
        ),
        body=matmul("D", "A", "B") + matmul("E", "D", "C") + (Let("chk", Const(0)),)
        + _checksum_over("E", n * n),
        result=Var("chk"),
    )


def three_mm(n: int = 9) -> Kernel:
    """E = A*B, F = C*D, G = E*F (Polybench 3mm)."""
    i, j, k = Var("i"), Var("j"), Var("k")

    def matmul(dst: str, lhs: str, rhs: str) -> Tuple:
        return (
            loop("i", 0, n, [
                loop("j", 0, n, [
                    Let("acc", Const(0)),
                    loop("k", 0, n, [
                        Let("acc", Var("acc") + Load(lhs, i * n + k) * Load(rhs, k * n + j)),
                    ]),
                    Store(dst, i * n + j, Var("acc")),
                ]),
            ]),
        )

    return Kernel(
        name="3mm",
        arrays=(
            ArrayDecl("A", n * n, init=_values(n * n, 3)),
            ArrayDecl("B", n * n, init=_values(n * n, 5)),
            ArrayDecl("C", n * n, init=_values(n * n, 7)),
            ArrayDecl("D", n * n, init=_values(n * n, 9)),
            ArrayDecl("E", n * n),
            ArrayDecl("F", n * n),
            ArrayDecl("G", n * n),
        ),
        body=matmul("E", "A", "B") + matmul("F", "C", "D") + matmul("G", "E", "F")
        + (Let("chk", Const(0)),) + _checksum_over("G", n * n),
        result=Var("chk"),
    )


def atax(n: int = 24) -> Kernel:
    """y = A^T (A x)."""
    i, j = Var("i"), Var("j")
    return Kernel(
        name="atax",
        arrays=(
            ArrayDecl("A", n * n, init=_values(n * n, 13)),
            ArrayDecl("x", n, init=_values(n, 17)),
            ArrayDecl("tmp", n),
            ArrayDecl("y", n),
        ),
        body=(
            loop("i", 0, n, [
                Let("acc", Const(0)),
                loop("j", 0, n, [
                    Let("acc", Var("acc") + Load("A", i * n + j) * Load("x", j)),
                ]),
                Store("tmp", i, Var("acc")),
            ]),
            loop("j", 0, n, [Store("y", j, Const(0))]),
            loop("i", 0, n, [
                loop("j", 0, n, [
                    Store("y", j, Load("y", j) + Load("A", i * n + j) * Load("tmp", i)),
                ]),
            ]),
            Let("chk", Const(0)),
        ) + _checksum_over("y", n),
        result=Var("chk"),
    )


def bicg(n: int = 24) -> Kernel:
    """s = A^T r ; q = A p."""
    i, j = Var("i"), Var("j")
    return Kernel(
        name="bicg",
        arrays=(
            ArrayDecl("A", n * n, init=_values(n * n, 19)),
            ArrayDecl("p", n, init=_values(n, 29)),
            ArrayDecl("r", n, init=_values(n, 31)),
            ArrayDecl("s", n),
            ArrayDecl("q", n),
        ),
        body=(
            loop("j", 0, n, [Store("s", j, Const(0))]),
            loop("i", 0, n, [
                Let("acc", Const(0)),
                loop("j", 0, n, [
                    Store("s", j, Load("s", j) + Load("r", i) * Load("A", i * n + j)),
                    Let("acc", Var("acc") + Load("A", i * n + j) * Load("p", j)),
                ]),
                Store("q", i, Var("acc")),
            ]),
            Let("chk", Const(0)),
        ) + _checksum_over("s", n) + _checksum_over("q", n),
        result=Var("chk"),
    )


def mvt(n: int = 24) -> Kernel:
    """x1 += A y1 ; x2 += A^T y2."""
    i, j = Var("i"), Var("j")
    return Kernel(
        name="mvt",
        arrays=(
            ArrayDecl("A", n * n, init=_values(n * n, 41)),
            ArrayDecl("x1", n, init=_values(n, 43)),
            ArrayDecl("x2", n, init=_values(n, 47)),
            ArrayDecl("y1", n, init=_values(n, 53)),
            ArrayDecl("y2", n, init=_values(n, 59)),
        ),
        body=(
            loop("i", 0, n, [
                Let("acc", Load("x1", i)),
                loop("j", 0, n, [
                    Let("acc", Var("acc") + Load("A", i * n + j) * Load("y1", j)),
                ]),
                Store("x1", i, Var("acc")),
            ]),
            loop("i", 0, n, [
                Let("acc", Load("x2", i)),
                loop("j", 0, n, [
                    Let("acc", Var("acc") + Load("A", j * n + i) * Load("y2", j)),
                ]),
                Store("x2", i, Var("acc")),
            ]),
            Let("chk", Const(0)),
        ) + _checksum_over("x1", n) + _checksum_over("x2", n),
        result=Var("chk"),
    )


def gesummv(n: int = 20) -> Kernel:
    """y = alpha*A*x + beta*B*x."""
    i, j = Var("i"), Var("j")
    return Kernel(
        name="gesummv",
        arrays=(
            ArrayDecl("A", n * n, init=_values(n * n, 61)),
            ArrayDecl("B", n * n, init=_values(n * n, 67)),
            ArrayDecl("x", n, init=_values(n, 71)),
            ArrayDecl("y", n),
        ),
        body=(
            loop("i", 0, n, [
                Let("ta", Const(0)),
                Let("tb", Const(0)),
                loop("j", 0, n, [
                    Let("ta", Var("ta") + Load("A", i * n + j) * Load("x", j)),
                    Let("tb", Var("tb") + Load("B", i * n + j) * Load("x", j)),
                ]),
                Store("y", i, Var("ta") * 3 + Var("tb") * 2),
            ]),
            Let("chk", Const(0)),
        ) + _checksum_over("y", n),
        result=Var("chk"),
    )


def gemver(n: int = 16) -> Kernel:
    """A += u1 v1^T + u2 v2^T ; x = beta*A^T*y + z ; w = alpha*A*x."""
    i, j = Var("i"), Var("j")
    return Kernel(
        name="gemver",
        arrays=(
            ArrayDecl("A", n * n, init=_values(n * n, 73)),
            ArrayDecl("u1", n, init=_values(n, 79)),
            ArrayDecl("v1", n, init=_values(n, 83)),
            ArrayDecl("u2", n, init=_values(n, 89)),
            ArrayDecl("v2", n, init=_values(n, 97)),
            ArrayDecl("y", n, init=_values(n, 101)),
            ArrayDecl("z", n, init=_values(n, 103)),
            ArrayDecl("x", n),
            ArrayDecl("w", n),
        ),
        body=(
            loop("i", 0, n, [
                loop("j", 0, n, [
                    Store("A", i * n + j,
                          Load("A", i * n + j)
                          + Load("u1", i) * Load("v1", j)
                          + Load("u2", i) * Load("v2", j)),
                ]),
            ]),
            loop("i", 0, n, [
                Let("acc", Const(0)),
                loop("j", 0, n, [
                    Let("acc", Var("acc") + Load("A", j * n + i) * Load("y", j)),
                ]),
                Store("x", i, Var("acc") * 2 + Load("z", i)),
            ]),
            loop("i", 0, n, [
                Let("acc", Const(0)),
                loop("j", 0, n, [
                    Let("acc", Var("acc") + Load("A", i * n + j) * Load("x", j)),
                ]),
                Store("w", i, Var("acc") * 3),
            ]),
            Let("chk", Const(0)),
        ) + _checksum_over("w", n),
        result=Var("chk"),
    )


def doitgen(nr: int = 8, nq: int = 8, np_: int = 8) -> Kernel:
    """sum[p] = sum_s A[r][q][s] * C4[s][p]; A[r][q][p] = sum[p]."""
    r, q, p, s = Var("r"), Var("q"), Var("p"), Var("s")
    return Kernel(
        name="doitgen",
        arrays=(
            ArrayDecl("A", nr * nq * np_, init=_values(nr * nq * np_, 107)),
            ArrayDecl("C4", np_ * np_, init=_values(np_ * np_, 109)),
            ArrayDecl("sum", np_),
        ),
        body=(
            loop("r", 0, nr, [
                loop("q", 0, nq, [
                    loop("p", 0, np_, [
                        Let("acc", Const(0)),
                        loop("s", 0, np_, [
                            Let("acc", Var("acc")
                                + Load("A", (r * nq + q) * np_ + s) * Load("C4", s * np_ + p)),
                        ]),
                        Store("sum", p, Var("acc")),
                    ]),
                    loop("p", 0, np_, [
                        Store("A", (r * nq + q) * np_ + p, Load("sum", p)),
                    ]),
                ]),
            ]),
            Let("chk", Const(0)),
        ) + _checksum_over("A", nr * nq * np_),
        result=Var("chk"),
    )


def jacobi_1d(n: int = 240, steps: int = 12) -> Kernel:
    """1-D 3-point stencil, ping-ponging A -> B -> A."""
    i = Var("i")
    return Kernel(
        name="jacobi-1d",
        arrays=(
            ArrayDecl("A", n, init=_values(n, 113)),
            ArrayDecl("B", n, init=_values(n, 127)),
        ),
        body=(
            loop("t", 0, steps, [
                loop("i", 1, n - 1, [
                    Store("B", i, (Load("A", i - 1) + Load("A", i) + Load("A", i + 1)) >> 1),
                ]),
                loop("i", 1, n - 1, [
                    Store("A", i, (Load("B", i - 1) + Load("B", i) + Load("B", i + 1)) >> 1),
                ]),
            ]),
            Let("chk", Const(0)),
        ) + _checksum_over("A", n),
        result=Var("chk"),
    )


def jacobi_2d(n: int = 16, steps: int = 6) -> Kernel:
    """2-D 5-point stencil, ping-ponging A -> B -> A."""
    i, j = Var("i"), Var("j")

    def sweep(dst: str, src: str) -> Tuple:
        return (
            loop("i", 1, n - 1, [
                loop("j", 1, n - 1, [
                    Store(dst, i * n + j,
                          (Load(src, i * n + j)
                           + Load(src, i * n + j - 1)
                           + Load(src, i * n + j + 1)
                           + Load(src, (i - 1) * n + j)
                           + Load(src, (i + 1) * n + j)) >> 2),
                ]),
            ]),
        )

    return Kernel(
        name="jacobi-2d",
        arrays=(
            ArrayDecl("A", n * n, init=_values(n * n, 131)),
            ArrayDecl("B", n * n, init=_values(n * n, 137)),
        ),
        body=(
            loop("t", 0, steps, list(sweep("B", "A") + sweep("A", "B"))),
            Let("chk", Const(0)),
        ) + _checksum_over("A", n * n),
        result=Var("chk"),
    )


def trisolv(n: int = 28) -> Kernel:
    """Forward substitution: x = L^-1 b (unit-ish lower triangular)."""
    i, j = Var("i"), Var("j")
    diag = tuple(1 + v % 4 for v in _values(n, 139))
    lower = _values(n * n, 149)
    l_init = tuple(
        diag[r] if r == c else (lower[r * n + c] if c < r else 0)
        for r in range(n) for c in range(n)
    )
    return Kernel(
        name="trisolv",
        arrays=(
            ArrayDecl("L", n * n, init=l_init),
            ArrayDecl("b", n, init=_values(n, 151, bound=100)),
            ArrayDecl("x", n),
        ),
        body=(
            loop("i", 0, n, [
                Let("acc", Load("b", Var("i"))),
                loop("j", 0, Var("i"), [
                    Let("acc", Var("acc") - Load("L", i * n + j) * Load("x", j)),
                ]),
                Store("x", i, Var("acc") / Load("L", i * n + i)),
            ]),
            Let("chk", Const(0)),
        ) + _checksum_over("x", n),
        result=Var("chk"),
    )


# ---------------------------------------------------------------------------
# Section V-B ablation: matrix multiply over arrays of row pointers.
# ---------------------------------------------------------------------------

def matmul_ptr(n: int = 12) -> Kernel:
    """Matrix multiply with pointer-table 2D representation.

    "We have modified the way 2D arrays are represented, selecting the
    one based on arrays of pointers.  Consequently, there are much more
    double indirection accesses, which increase the occurrence rate of
    Spectre patterns."  Every element access loads the row pointer first
    and then dereferences it — the row-pointer load speculates, poisoning
    the element address.
    """
    i, j, k = Var("i"), Var("j"), Var("k")

    def row_table(name: str, data: str) -> ArrayDecl:
        return ArrayDecl(
            name, n, init=tuple((data, r * n * 8) for r in range(n)),
        )

    def elem(table: str, row, col) -> LoadAt:
        return LoadAt(Load(table, row) + (col << 3))

    return Kernel(
        name="matmul-ptr",
        arrays=(
            row_table("A_rows", "A_data"),
            row_table("B_rows", "B_data"),
            row_table("C_rows", "C_data"),
            ArrayDecl("A_data", n * n, init=_values(n * n, 157)),
            ArrayDecl("B_data", n * n, init=_values(n * n, 163)),
            ArrayDecl("C_data", n * n),
        ),
        body=(
            loop("i", 0, n, [
                loop("j", 0, n, [
                    Let("acc", Const(0)),
                    loop("k", 0, n, [
                        Let("acc", Var("acc") + elem("A_rows", i, k) * elem("B_rows", k, j)),
                    ]),
                    StoreAt(Load("C_rows", i) + (j << 3), Var("acc")),
                ]),
            ]),
            Let("chk", Const(0)),
        ) + _checksum_over("C_data", n * n),
        result=Var("chk"),
    )


def matmul_flat(n: int = 12) -> Kernel:
    """The flat-array twin of :func:`matmul_ptr` (same data, same sizes),
    for side-by-side comparison in the Section V-B experiment."""
    i, j, k = Var("i"), Var("j"), Var("k")
    return Kernel(
        name="matmul-flat",
        arrays=(
            ArrayDecl("A", n * n, init=_values(n * n, 157)),
            ArrayDecl("B", n * n, init=_values(n * n, 163)),
            ArrayDecl("C", n * n),
        ),
        body=(
            loop("i", 0, n, [
                loop("j", 0, n, [
                    Let("acc", Const(0)),
                    loop("k", 0, n, [
                        Let("acc", Var("acc") + Load("A", i * n + k) * Load("B", k * n + j)),
                    ]),
                    Store("C", i * n + j, Var("acc")),
                ]),
            ]),
            Let("chk", Const(0)),
        ) + _checksum_over("C", n * n),
        result=Var("chk"),
    )


def seidel_2d(n: int = 14, steps: int = 4) -> Kernel:
    """Gauss-Seidel 2-D sweep (in-place 9-point average, Polybench
    'seidel-2d' over int64 with a shift instead of /9)."""
    i, j = Var("i"), Var("j")
    return Kernel(
        name="seidel-2d",
        arrays=(ArrayDecl("A", n * n, init=_values(n * n, 179, bound=64)),),
        body=(
            loop("t", 0, steps, [
                loop("i", 1, n - 1, [
                    loop("j", 1, n - 1, [
                        Store("A", i * n + j,
                              (Load("A", (i - 1) * n + j - 1)
                               + Load("A", (i - 1) * n + j)
                               + Load("A", (i - 1) * n + j + 1)
                               + Load("A", i * n + j - 1)
                               + Load("A", i * n + j)
                               + Load("A", i * n + j + 1)
                               + Load("A", (i + 1) * n + j - 1)
                               + Load("A", (i + 1) * n + j)
                               + Load("A", (i + 1) * n + j + 1)) >> 3),
                    ]),
                ]),
            ]),
            Let("chk", Const(0)),
        ) + _checksum_over("A", n * n),
        result=Var("chk"),
    )


def floyd_warshall(n: int = 10) -> Kernel:
    """All-pairs shortest paths (Polybench 'floyd-warshall', medley).

    The relaxation is a data-dependent conditional, so unlike the linear-
    algebra kernels this one carries an in-trace branch whose bias the
    profile discovers (most relaxations fail once paths settle).
    """
    i, j, k = Var("i"), Var("j"), Var("k")
    weights = tuple(
        0 if r == c else 10 + v
        for (r, c), v in zip(
            ((r, c) for r in range(n) for c in range(n)),
            _values(n * n, 181, bound=90),
        )
    )
    return Kernel(
        name="floyd-warshall",
        arrays=(ArrayDecl("W", n * n, init=weights),),
        body=(
            loop("k", 0, n, [
                loop("i", 0, n, [
                    loop("j", 0, n, [
                        Let("via", Load("W", i * n + k) + Load("W", k * n + j)),
                        when("<", Var("via"), Load("W", i * n + j), [
                            Store("W", i * n + j, Var("via")),
                        ]),
                    ]),
                ]),
            ]),
            Let("chk", Const(0)),
        ) + _checksum_over("W", n * n),
        result=Var("chk"),
    )


# ---------------------------------------------------------------------------
# Branchy extras (not part of the paper's Figure 4 suite): kernels with
# data-dependent conditionals, exercising biased in-trace side exits.
# ---------------------------------------------------------------------------

def relu(n: int = 96) -> Kernel:
    """y[i] = max(x[i], 0) over mostly-positive data.

    ~94% of the inputs are positive, so the sign check is strongly
    biased: the superblock follows the positive arm and speculates the
    next iteration's load above the check.
    """
    i = Var("i")
    raw = _values(n, 167, bound=16)
    # One in 16 values negative.
    signed = tuple(-v if v == 16 else v for v in raw)
    return Kernel(
        name="relu",
        arrays=(
            ArrayDecl("x", n, init=signed),
            ArrayDecl("y", n),
        ),
        body=(
            loop("i", 0, n, [
                Let("v", Load("x", i)),
                when(">", Var("v"), 0,
                     [Store("y", i, Var("v"))],
                     [Store("y", i, Const(0))]),
            ]),
            Let("chk", Const(0)),
        ) + _checksum_over("y", n),
        result=Var("chk"),
    )


def count_above(n: int = 96, threshold: int = 3) -> Kernel:
    """Count and accumulate the elements above a threshold."""
    i = Var("i")
    return Kernel(
        name="count-above",
        arrays=(ArrayDecl("x", n, init=_values(n, 173, bound=9)),),
        body=(
            Let("count", Const(0)),
            Let("total", Const(0)),
            loop("i", 0, n, [
                Let("v", Load("x", i)),
                when(">", Var("v"), threshold, [
                    Let("count", Var("count") + 1),
                    Let("total", Var("total") + Var("v")),
                ]),
            ]),
        ),
        result=Var("total") + Var("count"),
    )


#: Workloads beyond the paper's suite (used by extension tests/benches).
EXTRA_KERNELS: Dict[str, Callable[[], Kernel]] = {
    "relu": relu,
    "count-above": count_above,
}

#: The Figure 4 suite: name -> kernel factory (default = paper-scale).
POLYBENCH_SUITE: Dict[str, Callable[[], Kernel]] = {
    "gemm": gemm,
    "2mm": two_mm,
    "3mm": three_mm,
    "atax": atax,
    "bicg": bicg,
    "mvt": mvt,
    "gesummv": gesummv,
    "gemver": gemver,
    "doitgen": doitgen,
    "jacobi-1d": jacobi_1d,
    "jacobi-2d": jacobi_2d,
    "seidel-2d": seidel_2d,
    "floyd-warshall": floyd_warshall,
    "trisolv": trisolv,
}

#: Reduced sizes for fast unit tests.
SMALL_SIZES: Dict[str, Callable[[], Kernel]] = {
    "gemm": lambda: gemm(6),
    "2mm": lambda: two_mm(5),
    "3mm": lambda: three_mm(4),
    "atax": lambda: atax(8),
    "bicg": lambda: bicg(8),
    "mvt": lambda: mvt(8),
    "gesummv": lambda: gesummv(8),
    "gemver": lambda: gemver(6),
    "doitgen": lambda: doitgen(4, 4, 4),
    "jacobi-1d": lambda: jacobi_1d(48, 4),
    "jacobi-2d": lambda: jacobi_2d(8, 3),
    "seidel-2d": lambda: seidel_2d(7, 2),
    "floyd-warshall": lambda: floyd_warshall(6),
    "trisolv": lambda: trisolv(10),
}
