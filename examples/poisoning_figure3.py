#!/usr/bin/env python3
"""Reproduction of the paper's Figure 3: the poisoning analysis on the
data-flow graph of a Spectre v4 attack code.

Figure 3 shows three views of the same IR block:

  (A) the original data-flow graph, with all memory dependences;
  (B) the most aggressive version, where the DBT engine removes the
      store->load dependences to speculate;
  (C) the GhostBusters view: outputs of speculative loads are poisoned,
      and a control dependency pins the poisoned-address access behind
      the store.

This script builds the Figure 2 code as IR, runs the poisoning analysis,
and prints all three dependence views.
"""

from repro.dbt.ir import DepKind, IRBlock, IRInstruction, IRKind
from repro.security import analyze_block, apply_ghostbusters

# ---------------------------------------------------------------------------
# Figure 2's victim, as a single IR block.  Registers: r1 = &addr_buf,
# r2 = &buffer, r3 = &array_val, r4 = the slow "long computation" result.
# ---------------------------------------------------------------------------

def figure2_block() -> IRBlock:
    return IRBlock(entry=0x1000, instructions=[
        IRInstruction(IRKind.STORE, src1=1, src2=4, guest_address=0x1000),  # addr_buf[0] = slow
        IRInstruction(IRKind.LOAD, dst=5, src1=1, guest_address=0x1004),    # a = addr_buf[0]
        IRInstruction(IRKind.ALU, op="add", dst=6, src1=2, src2=5,
                      guest_address=0x1008),                                 # &buffer[a]
        IRInstruction(IRKind.LOAD, dst=7, src1=6, width=1, signed=False,
                      guest_address=0x100c),                                 # b = buffer[a]
        IRInstruction(IRKind.ALUI, op="sll", dst=8, src1=7, imm=6,
                      guest_address=0x1010),                                 # b * 64
        IRInstruction(IRKind.ALU, op="add", dst=9, src1=3, src2=8,
                      guest_address=0x1014),                                 # &array_val[b*64]
        IRInstruction(IRKind.LOAD, dst=10, src1=9, width=1, signed=False,
                      guest_address=0x1018),                                 # c = array_val[...]
        IRInstruction(IRKind.JUMP_EXIT, target=0x2000, guest_address=0x101c),
    ])


def print_edges(block: IRBlock, title: str, keep) -> None:
    print(title)
    for index, inst in enumerate(block.instructions):
        print("  %2d: %s" % (index, inst.describe()))
    print("  dependences:")
    for edge in block.dependences():
        if not keep(edge):
            continue
        marker = " (relaxable)" if edge.relaxable else ""
        print("    %2d -> %2d  %-8s%s"
              % (edge.src, edge.dst, edge.kind.value, marker))
    print()


def main() -> None:
    # (A) original DFG: every dependence enforced.
    block = figure2_block()
    print_edges(
        block,
        "(A) original data-flow graph (all memory dependences enforced):",
        keep=lambda e: e.kind in (DepKind.DATA, DepKind.MEM),
    )

    # (B) aggressive speculation: the relaxable store->load edges are the
    # ones the scheduler drops.
    print_edges(
        block,
        "(B) aggressive version: relaxable edges (dropped when speculating):",
        keep=lambda e: e.kind is DepKind.MEM and e.relaxable,
    )

    # (C) the poisoning analysis + fine-grained mitigation.
    report = analyze_block(block)
    print("(C) poisoning analysis:")
    print("  speculative sources: %s" % list(report.speculative_sources))
    for index, inst in enumerate(block.instructions):
        poisoned = report.poisoned_outputs.get(index, False)
        mark = "poisoned" if poisoned else ""
        flag = "  << FLAGGED (Spectre pattern)" if any(
            f.index == index for f in report.flagged
        ) else ""
        print("  %2d: %-28s %-9s%s" % (index, inst.describe(), mark, flag))

    apply_ghostbusters(block, report)
    print("\n  inserted control dependencies (red dashed arrows in Fig. 3C):")
    for edge in block.extra_dependences:
        print("    %2d -> %2d  %s" % (edge.src, edge.dst, edge.kind.value))


if __name__ == "__main__":
    main()
