"""Host-profiler + leakage-meter walkthrough: profile both Spectre PoCs,
read the compile-cost amortization verdict, and meter the leak under
all four mitigation policies.

Run with:  PYTHONPATH=src python examples/profiling_demo.py
"""

from repro.attacks.harness import (
    AttackVariant,
    build_attack_program,
    run_attack,
)
from repro.obs import (
    amortization_report,
    format_amortization,
    format_profile,
    leakage_table,
    profile_run,
)
from repro.security.policy import ALL_POLICIES, MitigationPolicy

VARIANTS = (AttackVariant.SPECTRE_V1, AttackVariant.SPECTRE_V4)


def main():
    # 1. Where does the *host* spend its wall time running each PoC?
    #    profile_run attaches a HostProfiler (no simulated observable
    #    changes — cycles are bit-identical to an unprofiled run) and
    #    attributes exclusive wall time to translation / scheduling /
    #    codegen / per-tier execution / chain dispatch / tcache IO.
    for variant in VARIANTS:
        program = build_attack_program(variant)
        result, report = profile_run(program, MitigationPolicy.GHOSTBUSTERS)
        print("host profile: %s under GHOSTBUSTERS (guest cycles %d)" % (
            variant.value, result.cycles))
        print(format_profile(report))
        print()

    # 2. Should these workloads run on the fast interpreter or the
    #    compiled tier?  Profile both tiers and join the per-block
    #    rows: a block amortizes when the execution time it saves
    #    exceeds its one-time compile cost.  The PoCs re-execute their
    #    attacker loops enough to prefer the compiled tier even cold;
    #    small Polybench kernels do not (see docs/PERFORMANCE.md §6).
    for variant in VARIANTS:
        program = build_attack_program(variant)
        _, fast = profile_run(program, MitigationPolicy.UNSAFE,
                              interpreter="fast")
        _, compiled = profile_run(program, MitigationPolicy.UNSAFE,
                                  interpreter="compiled")
        print(format_amortization(
            amortization_report(fast, compiled, workload=variant.value)))
        print()

    # 3. The leakage meters: run each PoC under every policy with
    #    measure=True and compare what the attack actually achieved
    #    (recovered bytes, covert-channel transmissions) against what
    #    the mitigation cost (squashed loads, wasted rollback cycles).
    #    Note the asymmetry the meters expose: v4 is stopped
    #    dynamically (rollbacks squash the poisoned load), v1 is
    #    pinned statically at translation time — zero rollback cost.
    for variant in VARIANTS:
        reports = [run_attack(variant, policy, measure=True).leakage
                   for policy in ALL_POLICIES]
        print("leakage meters: %s" % variant.value)
        print(leakage_table(reports))
        print()


if __name__ == "__main__":
    main()
