#!/usr/bin/env python3
"""Watching the pipeline: per-bundle execution trace of a hot loop.

Attaches an :class:`ExecutionTrace` to the VLIW core, runs a small
kernel, and prints the cycle-stamped issue stream — cold first-pass
bundles first (one op per line), then the dense optimized superblock
taking over mid-run.
"""

from repro.kernels import ArrayDecl, Const, Kernel, Let, Load, Var, loop
from repro.kernels.compiler import build_kernel_program
from repro.platform import DbtSystem
from repro.security import MitigationPolicy
from repro.vliw import ExecutionTrace

N = 24


def main() -> None:
    kernel = Kernel(
        name="sum",
        arrays=(ArrayDecl("x", N, init=tuple(range(1, N + 1))),),
        body=(
            Let("acc", Const(0)),
            loop("i", 0, N, [Let("acc", Var("acc") + Load("x", Var("i")))]),
        ),
        result=Var("acc"),
    )
    program = build_kernel_program(kernel)
    system = DbtSystem(program, policy=MitigationPolicy.UNSAFE)
    system.core.tracer = ExecutionTrace()
    result = system.run()
    print("exit=%d cycles=%d\n" % (result.exit_code, result.cycles))

    events = system.core.tracer.events
    print("first 12 issued bundles (cold, first-pass code):")
    for event in events[:12]:
        print("  %6d  %s" % (event.cycle, event.detail))

    # Find where the optimized trace kicks in: bundles with >1 op.
    dense = [e for e in events if ";" in e.detail]
    print("\nfirst 12 dense bundles (optimized superblock):")
    for event in dense[:12]:
        print("  %6d  %s" % (event.cycle, event.detail))


if __name__ == "__main__":
    main()
