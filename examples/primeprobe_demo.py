#!/usr/bin/env python3
"""Flushless Spectre v1: prime+probe instead of flush+reload.

The paper's RISC-V attack flushes the cache line by line.  This demo
shows the same trace-speculation leak recovered *without any cache
maintenance instruction*: the attacker owns every set of a direct-mapped
cache (prime), lets the victim's speculative load evict one line, and
times its own lines to find which set it lost (probe).

The countermeasures are channel-agnostic — GhostBusters pins the flagged
load itself, so the leak disappears from every channel at once.
"""

from repro.attacks import run_primeprobe
from repro.attacks.primeprobe import build_program, PrimeProbeConfig
from repro.isa.opcodes import Mnemonic
from repro.security import MitigationPolicy

SECRET = b"GHOSTBUSTERS!"


def main() -> None:
    program = build_program(PrimeProbeConfig(secret=SECRET))
    mnemonics = {inst.mnemonic for inst in program.instructions()}
    print("attack binary: %d instructions, cflush used: %s\n"
          % (program.instruction_count(), Mnemonic.CFLUSH in mnemonics))

    print("planted secret: %r\n" % SECRET)
    for policy in MitigationPolicy:
        recovered, result = run_primeprobe(policy, SECRET)
        print("%-16s recovered %r  (%s, %d cycles)" % (
            policy.value, bytes(recovered),
            "LEAKED" if recovered == SECRET else "blocked",
            result.cycles,
        ))


if __name__ == "__main__":
    main()
