#!/usr/bin/env python3
"""Spectre v4 on a DBT-based processor (paper Figure 2, Section III-B).

The memory-dependency-speculation variant: the DBT engine hoists loads
above a slow store as MCB-tracked speculative loads; the hoisted load
reads the attacker-primed *stale* value, its dependents touch a
secret-indexed cache line, and the MCB rollback that follows restores
architectural state — but not the cache.

The demo shows the speculative schedule (``ld.spec`` opcodes), the MCB
rollback counts, and the leak being blocked by each countermeasure.
"""

from repro.attacks import AttackVariant, run_attack
from repro.attacks.spectre_v4 import SpectreV4Config, build_program
from repro.platform import DbtSystem
from repro.security import MitigationPolicy

SECRET = b"GHOSTBUSTERS!"


def show_victim_schedule(policy: MitigationPolicy) -> None:
    program = build_program(SpectreV4Config(secret=SECRET))
    system = DbtSystem(program, policy=policy)
    result = system.run()
    victim_entry = program.symbol("victim")
    block = system.engine.cache.get(victim_entry)
    if block is None or block.kind != "optimized":
        print("  (victim was not optimized)")
        return
    print("  victim block under %s "
          "(%d speculative loads, %d MCB rollbacks during the run):"
          % (policy.value, block.speculative_loads, result.rollbacks))
    for line in block.describe().splitlines():
        print("  " + line)


def main() -> None:
    print("=== victim code as scheduled by the DBT engine ===\n")
    show_victim_schedule(MitigationPolicy.UNSAFE)
    print()
    show_victim_schedule(MitigationPolicy.GHOSTBUSTERS)

    print("\n=== the attack, across mitigation policies ===\n")
    print("planted secret: %r\n" % SECRET)
    for policy in MitigationPolicy:
        result = run_attack(AttackVariant.SPECTRE_V4, policy, secret=SECRET)
        print("%-16s recovered %r  (%d/%d bytes, %s, %d rollbacks)" % (
            policy.value,
            bytes(result.recovered),
            result.bytes_recovered,
            len(SECRET),
            "LEAKED" if result.leaked else "blocked",
            result.run.rollbacks,
        ))


if __name__ == "__main__":
    main()
