#!/usr/bin/env python3
"""Quickstart: assemble a guest program and run it on the DBT platform.

Demonstrates the core flow of the library:

1. write RV64IM assembly and assemble it into a linked guest binary;
2. run it on the functional reference interpreter (the oracle);
3. run it on the DBT-based processor: software DBT engine + in-order
   VLIW core + timed data cache;
4. inspect what the DBT engine did (first-pass translations, superblock
   optimizations, speculation) and compare mitigation policies.
"""

from repro.isa import assemble
from repro.interp import run_program
from repro.platform import DbtSystem, compare_policies
from repro.security import MitigationPolicy

SOURCE = """
# Sum of squares of table[0..N), stored back, checksum in the exit code.
.equ N, 64

_start:
    li   a0, 0
    li   t0, 0
    li   t1, N
    la   t2, table
loop:
    slli t3, t0, 3
    add  t3, t2, t3
    ld   t4, 0(t3)
    mul  t5, t4, t4
    add  a0, a0, t5
    sd   t5, 512(t3)
    addi t0, t0, 1
    blt  t0, t1, loop
    andi a0, a0, 0x7f
    li   a7, 93
    ecall

.data
table:
    .dword 1, 2, 3, 4, 5, 6, 7, 8
    .dword 9, 10, 11, 12, 13, 14, 15, 16
    .space 384          # rest of the inputs are zero
    .space 512          # output area
"""


def main() -> None:
    program = assemble(SOURCE)
    print("assembled %d guest instructions, entry at %#x\n"
          % (program.instruction_count(), program.entry))

    # 1. Reference interpreter: the architectural oracle.
    reference = run_program(program)
    print("[interpreter]  exit=%d  instructions=%d"
          % (reference.exit_code, reference.instructions))

    # 2. The DBT-based processor.
    system = DbtSystem(program, policy=MitigationPolicy.UNSAFE)
    result = system.run()
    assert result.exit_code == reference.exit_code
    print("[dbt platform] exit=%d" % result.exit_code)
    print(result.summary())

    # 3. What did the DBT engine build?  Show the hot loop's schedule.
    hot_blocks = [
        block for block in system.engine.cache.blocks()
        if block.kind == "optimized"
    ]
    if hot_blocks:
        print("\noptimized superblock (one bundle per line):")
        print(hot_blocks[0].describe())

    # 4. Compare the paper's four mitigation policies.
    print("\npolicy comparison (cycles, slowdown vs unsafe):")
    comparison = compare_policies(
        "quickstart", program, expect_exit_code=reference.exit_code,
    )
    base = comparison.results["unsafe"].cycles
    for label, run in comparison.results.items():
        print("  %-18s %8d cycles  (%.1f%%)"
              % (label, run.cycles, 100.0 * run.cycles / base))


if __name__ == "__main__":
    main()
