#!/usr/bin/env python3
"""Writing your own workload with the kernel DSL.

Builds a small dot-product kernel in the DSL, shows the generated RISC-V
assembly, validates it on the reference interpreter, and inspects the
superblock (with unrolling and speculation) the DBT engine builds for its
hot loop.
"""

from repro.interp import run_program
from repro.kernels import ArrayDecl, Const, Kernel, Let, Load, Var, loop
from repro.kernels.compiler import build_kernel_program, compile_kernel
from repro.platform import DbtSystem
from repro.security import MitigationPolicy

N = 32


def dot_product() -> Kernel:
    i = Var("i")
    return Kernel(
        name="dot",
        arrays=(
            ArrayDecl("x", N, init=tuple((3 * k + 1) % 17 for k in range(N))),
            ArrayDecl("y", N, init=tuple((5 * k + 2) % 13 for k in range(N))),
        ),
        body=(
            Let("acc", Const(0)),
            loop("i", 0, N, [
                Let("acc", Var("acc") + Load("x", i) * Load("y", i)),
            ]),
        ),
        result=Var("acc"),
    )


def main() -> None:
    kernel = dot_product()

    print("=== generated RISC-V assembly ===")
    print(compile_kernel(kernel))

    program = build_kernel_program(kernel)
    expected = sum(
        ((3 * k + 1) % 17) * ((5 * k + 2) % 13) for k in range(N)
    ) & 0x7F
    reference = run_program(program)
    print("interpreter exit code: %d (expected %d)"
          % (reference.exit_code, expected))
    assert reference.exit_code == expected

    system = DbtSystem(program, policy=MitigationPolicy.UNSAFE)
    result = system.run()
    assert result.exit_code == expected
    print("\n=== DBT platform ===")
    print(result.summary())

    print("\n=== hot-loop superblock (note the unrolling and any ld.spec) ===")
    for block in system.engine.cache.blocks():
        if block.kind == "optimized":
            print(block.describe())
            break


if __name__ == "__main__":
    main()
