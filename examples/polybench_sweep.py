#!/usr/bin/env python3
"""Quick Figure-4 sweep: Polybench suite across mitigation policies.

Runs a reduced-size version of the benchmark suite under the four
policies and prints slowdowns versus the unsafe baseline (the full-size
sweep lives in ``benchmarks/bench_figure4.py``).
"""

from repro.interp import run_program
from repro.kernels import SMALL_SIZES, build_kernel_program, matmul_ptr
from repro.platform import compare_policies, slowdown_table
from repro.security import MitigationPolicy


def main() -> None:
    comparisons = []
    workloads = dict(SMALL_SIZES)
    workloads["matmul-ptr"] = lambda: matmul_ptr(8)
    for name, factory in workloads.items():
        program = build_kernel_program(factory())
        expected = run_program(program).exit_code
        comparison = compare_policies(name, program, expect_exit_code=expected)
        comparisons.append(comparison)
        print("%-12s done (unsafe: %d cycles)"
              % (name, comparison.results["unsafe"].cycles))
    print()
    print(slowdown_table(
        comparisons,
        policies=(
            MitigationPolicy.GHOSTBUSTERS,
            MitigationPolicy.FENCE,
            MitigationPolicy.NO_SPECULATION,
        ),
    ))


if __name__ == "__main__":
    main()
