"""Observability walkthrough: trace a Spectre-v1 run, inspect the metrics,
and print the per-policy cycle attribution table.

Run with:  PYTHONPATH=src python examples/observability_demo.py
"""

from repro.attacks.harness import AttackVariant, build_attack_program
from repro.obs import Observer, Tracer
from repro.obs.attribution import attribute_policies, attribution_table
from repro.platform.system import DbtSystem
from repro.security.policy import MitigationPolicy


def main():
    program = build_attack_program(AttackVariant.SPECTRE_V1)

    # 1. Wire an Observer through the whole platform and subscribe to the
    #    events the GhostBusters analysis emits.
    observer = Observer(tracer=Tracer())
    patterns = []
    observer.bus.subscribe(patterns.append, name="spectre_pattern_detected")

    result = DbtSystem(program,
                       policy=MitigationPolicy.GHOSTBUSTERS,
                       observer=observer).run()

    print("spectre v1 under GHOSTBUSTERS")
    print(result.summary())
    print()

    for event in patterns:
        print("pattern flagged @ cycle %d: entry=%s reg=%s" % (
            event.cycle, event.attrs["entry"],
            event.attrs["address_register"]))
    print()

    # 2. The tracer holds a Chrome-trace timeline of every DBT phase and
    #    executed block; write it out for chrome://tracing / Perfetto.
    observer.tracer.write("spectre_v1_trace.json")
    print("wrote spectre_v1_trace.json  (%d spans, %d instants)" % (
        len(observer.tracer.spans), len(observer.tracer.instants)))

    # 3. A few registry highlights (full dump: registry.to_json()).
    registry = observer.registry
    for name in ("core.blocks_executed_total", "mem.load_misses_total",
                 "events.spectre_pattern_detected", "run.ipc"):
        print("%-34s %s" % (name, registry.value(name)))
    print()

    # 4. The `repro stats` backend: run once per policy and attribute
    #    where the cycles went.
    rows = attribute_policies(program)
    print("cycle attribution, spectre v1:")
    print(attribution_table(rows))


if __name__ == "__main__":
    main()
