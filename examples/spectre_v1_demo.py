#!/usr/bin/env python3
"""Spectre v1 on a DBT-based processor (paper Figure 1, Section III-A).

Runs the trace-speculation Spectre proof of concept under all four
mitigation policies and shows:

* the victim's optimized VLIW schedule, with the two loads hoisted above
  the bounds-check side exit into hidden registers (the vulnerability);
* the recovered secret under the unsafe configuration;
* the same attack completely blocked by the GhostBusters countermeasure,
  the fence-on-detection variant, and speculation-off.
"""

from repro.attacks import AttackVariant, run_attack
from repro.attacks.spectre_v1 import SpectreV1Config, build_program
from repro.platform import DbtSystem
from repro.security import MitigationPolicy

SECRET = b"GHOSTBUSTERS!"


def show_victim_schedule(policy: MitigationPolicy) -> None:
    """Run the PoC and dump the victim's optimized trace."""
    program = build_program(SpectreV1Config(secret=SECRET))
    system = DbtSystem(program, policy=policy)
    system.run()
    victim_entry = program.symbol("victim")
    block = system.engine.cache.get(victim_entry)
    if block is None or block.kind != "optimized":
        print("  (victim was not optimized)")
        return
    print("  victim superblock under %s:" % policy.value)
    for line in block.describe().splitlines():
        print("  " + line)
    report = system.engine.reports.get(victim_entry)
    if report is not None:
        print("  poison analysis: %d speculative source(s), %d flagged access(es)"
              % (len(report.speculative_sources), report.pattern_count))


def main() -> None:
    print("=== victim code as scheduled by the DBT engine ===\n")
    show_victim_schedule(MitigationPolicy.UNSAFE)
    print()
    show_victim_schedule(MitigationPolicy.GHOSTBUSTERS)

    print("\n=== the attack, across mitigation policies ===\n")
    print("planted secret: %r\n" % SECRET)
    for policy in MitigationPolicy:
        result = run_attack(AttackVariant.SPECTRE_V1, policy, secret=SECRET)
        print("%-16s recovered %r  (%d/%d bytes, %s)" % (
            policy.value,
            bytes(result.recovered),
            result.bytes_recovered,
            len(SECRET),
            "LEAKED" if result.leaked else "blocked",
        ))


if __name__ == "__main__":
    main()
